"""Behavioural tests for CoS properties the paper asserts in prose."""

import numpy as np
import pytest

from repro.channel import IndoorChannel
from repro.cos import CosLink
from repro.cos.rate_control import ControlRateController
from repro.phy import RATE_TABLE


class TestFreeness:
    def test_airtime_identical_with_and_without_control(self):
        """The core promise: control messages add zero airtime."""
        channel = IndoorChannel.position("B", snr_db=18.0, seed=11)
        link = CosLink(channel=channel)
        rate = link.adapter.select(channel.measured_snr_db)

        record_with = link.tx.build(bytes(400), rate, 18.0)
        link.tx.enqueue_control([1, 0, 1, 1] * 8)
        record_without = link.tx.build(bytes(400), rate, 18.0)
        assert (
            record_with.frame.waveform.size == record_without.frame.waveform.size
        )

    def test_throughput_preserved_at_target_prr(self):
        """PRR with adaptive-rate CoS stays at the no-CoS level."""
        def prr(with_cos):
            channel = IndoorChannel.position("B", snr_db=13.0, seed=9)
            link = CosLink(channel=channel)
            ok = 0
            for _ in range(15):
                bits = [0, 1, 1, 0] * (4 if with_cos else 0)
                ok += link.exchange(bytes(400), bits).data_ok
            return ok / 15

        assert prr(True) >= prr(False) - 0.07


class TestRmInvariance:
    def test_silence_rate_tracks_airtime_not_packet_size(self):
        """Rm is a per-second quantity: longer packets carry
        proportionally more silences at the same SNR."""
        controller = ControlRateController()
        rate = RATE_TABLE[24]
        short_syms = rate.n_symbols_for(200)
        long_syms = rate.n_symbols_for(1400)
        short_alloc = controller.allocation(15.0, short_syms)
        long_alloc = controller.allocation(15.0, long_syms)
        short_rate = short_alloc.target_silences / ControlRateController.packet_airtime_s(short_syms)
        long_rate = long_alloc.target_silences / ControlRateController.packet_airtime_s(long_syms)
        assert short_rate == pytest.approx(long_rate, rel=0.15)


class TestCapacityOrdering:
    def test_capacity_follows_code_redundancy_not_snr(self):
        """§IV-B's first observation: capacity tracks spare redundancy.
        A *higher* SNR that triggers a higher rate (thinner code) gets a
        *smaller* control allocation."""
        controller = ControlRateController()
        n_symbols = 60
        qpsk_band = controller.allocation(9.0, n_symbols)  # QPSK 1/2 region
        qam64_band = controller.allocation(23.0, n_symbols)  # 64QAM 3/4 region
        assert qpsk_band.target_silences > qam64_band.target_silences

    def test_within_band_capacity_grows(self):
        controller = ControlRateController()
        low = controller.allocation(12.2, 60)
        high = controller.allocation(17.0, 60)
        assert high.target_silences >= low.target_silences


class TestFeedbackDiscipline:
    def test_no_feedback_on_failed_packet(self):
        """State only advances on data success (paper §III-F)."""
        channel = IndoorChannel.position("C", snr_db=30.0, seed=2)
        link = CosLink(channel=channel)
        link.exchange(bytes(300), [1, 0, 1, 0])
        subcarriers_before = list(link.tx.control_subcarriers)

        # Force an outage for one packet.  (The factor is large because
        # the NIC-style harmonic-mean SNR understates a notched channel:
        # the soft decoder rides out surprisingly low *measured* SNRs.)
        saved = channel.noise_var
        channel.noise_var = saved * 10_000_000
        outcome = link.exchange(bytes(300), [1, 1, 0, 0])
        channel.noise_var = saved

        assert not outcome.data_ok
        assert link.tx.control_subcarriers == subcarriers_before
        assert link.controller.in_fallback

    def test_tx_rx_sets_stay_synchronised(self):
        channel = IndoorChannel.position("A", snr_db=15.0, seed=5)
        link = CosLink(channel=channel)
        for _ in range(6):
            link.exchange(bytes(300), [0, 1, 1, 0])
            assert link.tx.control_subcarriers == link.rx.control_subcarriers
