"""Unit tests for the bitmap-coding baseline."""

import numpy as np
import pytest

from repro.cos.bitmap_coding import BitmapPlanner
from repro.cos.intervals import IntervalCodec
from repro.cos.silence import SilencePlanner


class TestBitmapPlanner:
    def test_roundtrip(self, rng):
        planner = BitmapPlanner(list(range(8)))
        bits = rng.integers(0, 2, 100, dtype=np.uint8)
        plan = planner.plan(bits, n_symbols=20)
        assert np.array_equal(planner.recover_bits(plan.mask, 100), bits)

    def test_silence_count_equals_ones(self, rng):
        planner = BitmapPlanner([0, 1])
        bits = np.array([1, 0, 1, 1, 0, 0, 1], dtype=np.uint8)
        plan = planner.plan(bits, n_symbols=10)
        assert plan.n_silences == 4
        assert plan.mask.sum() == 4

    def test_truncates_to_stream(self):
        planner = BitmapPlanner([0])
        bits = np.ones(100, dtype=np.uint8)
        plan = planner.plan(bits, n_symbols=5)
        assert plan.embedded_bits.size == 5

    def test_capacity(self):
        assert BitmapPlanner(list(range(4))).capacity_bits(10) == 40

    def test_validation(self):
        with pytest.raises(ValueError):
            BitmapPlanner([])
        with pytest.raises(ValueError):
            BitmapPlanner([1, 1])
        with pytest.raises(ValueError):
            BitmapPlanner([48])


class TestSchemeComparison:
    def test_interval_coding_uses_fewer_silences(self, rng):
        """The core trade-off: intervals spend ~1/k silences per bit,
        bitmap spends ~1/2 — interval coding preserves ~4x more of the
        channel code's correction budget at k=4."""
        subcarriers = list(range(16))
        bits = rng.integers(0, 2, 256, dtype=np.uint8)

        interval_plan = SilencePlanner(subcarriers).plan(bits, n_symbols=60)
        bitmap_plan = BitmapPlanner(subcarriers).plan(bits, n_symbols=60)

        assert interval_plan.embedded_bits.size == bits.size
        assert bitmap_plan.embedded_bits.size == bits.size
        assert interval_plan.n_silences < bitmap_plan.n_silences / 1.5

    def test_bitmap_tolerates_single_detection_error(self, rng):
        """One flipped cell costs bitmap one bit; intervals lose sync."""
        subcarriers = list(range(8))
        bits = rng.integers(0, 2, 64, dtype=np.uint8)

        bitmap = BitmapPlanner(subcarriers)
        plan = bitmap.plan(bits, n_symbols=20)
        corrupted = plan.mask.copy()
        corrupted[0, subcarriers[3]] ^= True
        recovered = bitmap.recover_bits(corrupted, 64)
        assert np.count_nonzero(recovered != bits) == 1

        intervals = SilencePlanner(subcarriers)
        iplan = intervals.plan(bits, n_symbols=40)
        icorrupt = iplan.mask.copy()
        # Remove the second silence: every interval after it shifts.
        silent_cells = np.argwhere(iplan.mask)
        icorrupt[tuple(silent_cells[1])] = False
        try:
            irecovered = intervals.recover_bits(icorrupt)
            damage = (
                irecovered.size != bits.size
                or np.count_nonzero(irecovered != bits) > 1
            )
        except ValueError:
            damage = True  # detected desync counts as (loud) damage
        assert damage

    def test_bitmap_needs_external_framing(self, rng):
        """recover_bits without n_bits returns the whole stream —
        trailing zeros are indistinguishable from absent data."""
        planner = BitmapPlanner([0, 1])
        bits = np.array([1, 0, 1], dtype=np.uint8)
        plan = planner.plan(bits, n_symbols=10)
        full = planner.recover_bits(plan.mask)
        assert full.size == 20
        assert np.array_equal(full[:3], bits)
