"""Dedicated transmitter-chain tests."""

import numpy as np
import pytest

from repro.phy import RATE_TABLE, Transmitter, build_mpdu
from repro.phy.params import SYMBOL_SAMPLES
from repro.phy.preamble import PREAMBLE_SAMPLES


class TestWaveformStructure:
    def test_length_formula(self, psdu):
        for mbps, rate in RATE_TABLE.items():
            frame = Transmitter().transmit(psdu, rate)
            expected = PREAMBLE_SAMPLES + (1 + frame.n_data_symbols) * SYMBOL_SAMPLES
            assert frame.waveform.size == expected, mbps

    def test_n_data_symbols_matches_rate(self, psdu):
        frame = Transmitter().transmit(psdu, RATE_TABLE[24])
        assert frame.n_data_symbols == RATE_TABLE[24].n_symbols_for(len(psdu))

    def test_preamble_prefix_constant(self, psdu):
        from repro.phy.preamble import generate_preamble

        frame = Transmitter().transmit(psdu, RATE_TABLE[6])
        assert np.allclose(frame.waveform[:PREAMBLE_SAMPLES], generate_preamble())

    def test_coded_bits_length(self, psdu):
        for rate in RATE_TABLE.values():
            frame = Transmitter().transmit(psdu, rate)
            assert frame.coded_bits.size == frame.n_data_symbols * rate.n_cbps

    def test_data_symbols_unit_energy(self, psdu):
        frame = Transmitter().transmit(psdu, RATE_TABLE[54])
        power = np.mean(np.abs(frame.data_symbols) ** 2)
        assert power == pytest.approx(1.0, rel=0.05)


class TestValidation:
    def test_empty_psdu_rejected(self):
        with pytest.raises(ValueError):
            Transmitter().transmit(b"", RATE_TABLE[6])

    def test_wrong_mask_shape_rejected(self, psdu):
        mask = np.zeros((1, 48), dtype=bool)
        with pytest.raises(ValueError):
            Transmitter().transmit(psdu, RATE_TABLE[24], silence_mask=mask)

    def test_default_mask_all_false(self, psdu):
        frame = Transmitter().transmit(psdu, RATE_TABLE[24])
        assert not frame.silence_mask.any()


class TestSilenceInsertion:
    def test_silence_reduces_waveform_energy(self, psdu):
        tx = Transmitter()
        rate = RATE_TABLE[24]
        clean = tx.transmit(psdu, rate)
        mask = np.zeros_like(clean.silence_mask)
        mask[:, ::4] = True  # silence a quarter of the data cells
        silenced = tx.transmit(psdu, rate, silence_mask=mask)
        e_clean = np.sum(np.abs(clean.waveform[PREAMBLE_SAMPLES:]) ** 2)
        e_sil = np.sum(np.abs(silenced.waveform[PREAMBLE_SAMPLES:]) ** 2)
        assert e_sil < e_clean * 0.9

    def test_data_symbols_keep_ideal_values(self, psdu):
        """TxFrame.data_symbols is the pre-silence ground truth."""
        tx = Transmitter()
        rate = RATE_TABLE[24]
        mask = np.zeros((rate.n_symbols_for(len(psdu)), 48), dtype=bool)
        mask[0, 0] = True
        frame = tx.transmit(psdu, rate, silence_mask=mask)
        assert abs(frame.data_symbols[0, 0]) > 0.1  # not zeroed in the record

    def test_deterministic(self, psdu):
        a = Transmitter().transmit(psdu, RATE_TABLE[36])
        b = Transmitter().transmit(psdu, RATE_TABLE[36])
        assert np.array_equal(a.waveform, b.waveform)

    def test_scrambler_state_changes_waveform(self, psdu):
        a = Transmitter(scrambler_state=0b1011101).transmit(psdu, RATE_TABLE[12])
        b = Transmitter(scrambler_state=0b0100110).transmit(psdu, RATE_TABLE[12])
        assert not np.allclose(a.waveform, b.waveform)
