"""Unit tests for subcarrier selection and feedback encoding."""

import numpy as np
import pytest

from repro.cos.selection import FeedbackCodec, SubcarrierSelector
from repro.phy.modulation import get_modulation


class TestThresholdRule:
    def test_selects_subcarriers_above_dm_half(self):
        mod = get_modulation("16qam")
        evms = np.full(48, 0.01)
        evms[[3, 17]] = mod.min_distance / 2 + 0.01  # weak but detectable-ish
        result = SubcarrierSelector(evm_ceiling=1.0).select(evms, mod)
        assert result.subcarriers == [3, 17]
        assert result.threshold == pytest.approx(mod.min_distance / 2)

    def test_min_count_enforced_on_clean_channel(self):
        mod = get_modulation("qpsk")
        evms = np.linspace(0.01, 0.05, 48)
        result = SubcarrierSelector(min_count=2, evm_ceiling=1.0).select(evms, mod)
        assert len(result.subcarriers) == 2
        # The two weakest (highest EVM) are chosen.
        assert result.subcarriers == [46, 47]

    def test_max_count_caps_selection(self):
        mod = get_modulation("qpsk")
        evms = np.full(48, 0.9)  # everything "weak"
        result = SubcarrierSelector(max_count=4, evm_ceiling=2.0).select(evms, mod)
        assert len(result.subcarriers) == 4

    def test_target_count_overrides(self):
        mod = get_modulation("qpsk")
        evms = np.linspace(0.01, 0.3, 48)
        result = SubcarrierSelector(evm_ceiling=1.0).select(evms, mod, target_count=5)
        assert len(result.subcarriers) == 5


class TestDetectabilityCeiling:
    def test_ceiling_from_modulation(self):
        sel = SubcarrierSelector(detectability_factor=60.0)
        qpsk = sel.ceiling_for(get_modulation("qpsk"))
        qam64 = sel.ceiling_for(get_modulation("64qam"))
        assert qpsk == pytest.approx(np.sqrt(1 / 60))
        assert qam64 < qpsk  # higher-order modulation needs stronger subcarriers

    def test_dead_subcarriers_avoided(self):
        mod = get_modulation("qpsk")
        sel = SubcarrierSelector(detectability_factor=60.0)
        ceiling = sel.ceiling_for(mod)
        evms = np.full(48, 0.02)
        evms[10] = ceiling - 0.001  # weak but alive
        evms[11] = 0.9  # dead
        result = sel.select(evms, mod, target_count=1)
        assert result.subcarriers == [10]

    def test_dead_used_as_last_resort(self):
        mod = get_modulation("qpsk")
        sel = SubcarrierSelector(detectability_factor=60.0)
        evms = np.full(48, 0.9)  # all dead
        result = sel.select(evms, mod, target_count=3)
        assert len(result.subcarriers) == 3

    def test_explicit_ceiling_override(self):
        sel = SubcarrierSelector(evm_ceiling=0.123)
        assert sel.ceiling_for(get_modulation("64qam")) == 0.123


class TestBitVector:
    def test_bit_vector_consistent(self):
        mod = get_modulation("qpsk")
        evms = np.full(48, 0.01)
        evms[7] = 0.1
        result = SubcarrierSelector().select(evms, mod, target_count=1)
        assert result.bit_vector.sum() == 1
        assert result.bit_vector[result.subcarriers[0]] == 1

    def test_invalid_evm_shape(self):
        with pytest.raises(ValueError):
            SubcarrierSelector().select(np.zeros(47), get_modulation("qpsk"))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SubcarrierSelector(min_count=-1)
        with pytest.raises(ValueError):
            SubcarrierSelector(min_count=5, max_count=2)
        with pytest.raises(ValueError):
            SubcarrierSelector(detectability_factor=0.0)


class TestFeedbackCodec:
    def test_roundtrip(self):
        subcarriers = [3, 9, 40]
        mask = FeedbackCodec.encode(subcarriers)
        assert mask.shape == (1, 48)
        assert FeedbackCodec.decode(mask) == subcarriers

    def test_empty_selection(self):
        assert FeedbackCodec.decode(FeedbackCodec.encode([])) == []

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FeedbackCodec.encode([48])
