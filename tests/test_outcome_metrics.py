"""Tests for ExchangeOutcome / LinkStats metric edge cases."""

import numpy as np
import pytest

from repro.cos.link import ExchangeOutcome, LinkStats


def _outcome(sent, received, data_ok=True, silences=3):
    return ExchangeOutcome(
        data_ok=data_ok,
        control_sent=np.asarray(sent, dtype=np.uint8),
        control_received=np.asarray(received, dtype=np.uint8),
        rate_mbps=24,
        measured_snr_db=15.0,
        actual_snr_db=17.0,
        n_silences=silences,
        detection_fp=0.0,
        detection_fn=0.0,
    )


class TestControlOk:
    def test_exact_match(self):
        assert _outcome([0, 1, 1, 0], [0, 1, 1, 0]).control_ok

    def test_length_mismatch(self):
        assert not _outcome([0, 1, 1, 0], [0, 1]).control_ok

    def test_bit_mismatch(self):
        assert not _outcome([0, 1, 1, 0], [0, 1, 1, 1]).control_ok

    def test_vacuous(self):
        assert _outcome([], []).control_ok


class TestGroupAccuracy:
    def test_all_groups_good(self):
        o = _outcome([0, 1, 1, 0] * 3, [0, 1, 1, 0] * 3)
        assert o.control_group_accuracy() == 1.0

    def test_prefix_semantics(self):
        sent = [0, 0, 0, 0] + [1, 1, 1, 1] + [0, 1, 0, 1]
        recv = [0, 0, 0, 0] + [1, 1, 1, 0] + [0, 1, 0, 1]
        # Second group is wrong: desync kills it and everything after.
        assert _outcome(sent, recv).control_group_accuracy() == pytest.approx(1 / 3)

    def test_short_reception(self):
        sent = [0, 1, 1, 0] * 4
        recv = [0, 1, 1, 0]
        assert _outcome(sent, recv).control_group_accuracy() == pytest.approx(1 / 4)

    def test_nothing_sent(self):
        assert _outcome([], [1, 0, 1, 0]).control_group_accuracy() == 1.0

    def test_sub_group_remainder_ignored(self):
        o = _outcome([0, 1, 1, 0, 1, 1], [0, 1, 1, 0, 1, 1])
        assert o.control_group_accuracy() == 1.0  # one whole group, correct


class TestLinkStats:
    def test_empty(self):
        stats = LinkStats()
        assert stats.prr == 0.0
        assert stats.control_accuracy == 1.0
        assert stats.message_accuracy == 1.0
        assert stats.control_bits_delivered == 0

    def test_aggregates(self):
        stats = LinkStats(
            outcomes=[
                _outcome([0, 1, 1, 0], [0, 1, 1, 0]),
                _outcome([1, 1, 1, 1], [0, 0, 0, 0]),
                _outcome([], [], data_ok=False, silences=0),
            ]
        )
        assert stats.n_packets == 3
        assert stats.prr == pytest.approx(2 / 3)
        assert stats.control_accuracy == pytest.approx(1 / 2)
        assert stats.message_accuracy == pytest.approx(1 / 2)
        assert stats.control_bits_delivered == 4
        assert stats.total_silences == 6

    def test_message_accuracy_ge_packet_accuracy(self):
        stats = LinkStats(
            outcomes=[
                _outcome([0, 1, 1, 0] * 2, [0, 1, 1, 0] + [1, 0, 0, 1]),
            ]
        )
        assert stats.message_accuracy >= stats.control_accuracy
