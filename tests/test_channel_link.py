"""Unit tests for the composite IndoorChannel."""

import numpy as np
import pytest

from repro.channel import IndoorChannel, PulseInterferer


class TestConstruction:
    def test_measured_snr_targeting(self):
        for target in (5.0, 12.0, 20.0):
            ch = IndoorChannel.position("A", snr_db=target, seed=1)
            assert ch.measured_snr_db == pytest.approx(target, abs=1e-6)

    def test_actual_snr_targeting(self):
        ch = IndoorChannel.position("B", snr_db=18.0, seed=2, snr_reference="actual")
        assert ch.actual_snr_db == pytest.approx(18.0, abs=1e-6)

    def test_invalid_reference(self):
        with pytest.raises(ValueError):
            IndoorChannel.position("A", snr_db=10.0, seed=0, snr_reference="bogus")

    def test_flat_channel(self):
        ch = IndoorChannel.flat(snr_db=15.0, seed=0)
        assert ch.actual_snr_db == pytest.approx(15.0, abs=1e-6)
        assert ch.measured_snr_db == pytest.approx(15.0, abs=1e-6)

    def test_negative_noise_rejected(self):
        from repro.channel.multipath import TappedDelayLine

        with pytest.raises(ValueError):
            IndoorChannel(tdl=TappedDelayLine.identity(), noise_var=-1.0)


class TestPropagation:
    def test_transmit_adds_noise(self, rng):
        ch = IndoorChannel.flat(snr_db=10.0, seed=4)
        wave = np.ones(1000, dtype=complex)
        out = ch.transmit(wave)
        assert not np.allclose(out, wave)
        assert out.shape == wave.shape

    def test_transmit_applies_interference(self):
        interferer = PulseInterferer(
            pulse_power=50.0, symbol_probability=1.0, rng=np.random.default_rng(0)
        )
        ch = IndoorChannel.flat(snr_db=40.0, seed=4)
        ch.interferer = interferer
        out = ch.transmit(np.zeros(160, dtype=complex))
        assert np.mean(np.abs(out) ** 2) > 1.0

    def test_evolution_changes_taps(self):
        ch = IndoorChannel.position("A", snr_db=15.0, seed=5)
        h_before = ch.frequency_response().copy()
        ch.evolve(0.5)  # long gap -> decorrelated
        assert not np.allclose(ch.frequency_response(), h_before)

    def test_evolution_preserves_mean_snr_statistics(self):
        """Measured SNR stays in a sane band as the channel drifts."""
        ch = IndoorChannel.position("B", snr_db=15.0, seed=6)
        snrs = []
        for _ in range(50):
            ch.evolve(0.02)
            snrs.append(ch.measured_snr_db)
        assert 5.0 < np.median(snrs) < 25.0

    def test_data_subcarrier_snrs_shape(self):
        ch = IndoorChannel.position("C", snr_db=12.0, seed=7)
        snrs = ch.data_subcarrier_snrs()
        assert snrs.shape == (48,)
        assert np.all(snrs > 0)
