"""Tests for the net-lens: airtime ledger, event trace, profiler, CLI.

The load-bearing guarantees:

* **Conservation** — per node, the four ledger states (tx / busy /
  backoff / idle) telescope to exactly the simulation duration, and the
  transmit time splits exactly into data / control / ack.
* **Determinism** — with ``wall_clock=False`` the event stream is
  byte-identical between serial and process-pool sweeps.
* **Schema** — every trace record is a versioned ``type="net"`` event
  with a name from the pinned vocabulary; failure causes come from the
  net taxonomy.
* The paper's headline, as an observable: the CoS run's control airtime
  fraction sits strictly below the explicit run's.
"""

import json

import pytest

import repro.obs as obs
from repro.cli import main
from repro.net import NetLens, builtin_scenario, run_scenario, run_scenario_sweep
from repro.net.lens import NET_EVENT_NAMES, NODE_STATES
from repro.obs.flight import NET_FAILURE_CAUSES, classify_net_failure
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.obs.sink import SCHEMA_VERSION, read_jsonl
from repro.obs.summarize import summarize_events
from repro.obs.timeline import extract_intervals, render_timeline


@pytest.fixture(autouse=True)
def _isolated_obs():
    previous = set_registry(MetricsRegistry())
    obs.shutdown()
    yield
    obs.shutdown()
    set_registry(previous)


def _small_spec(**overrides):
    defaults = dict(n_packets=30, duration_us=30_000.0)
    defaults.update(overrides)
    return builtin_scenario("hidden-node", **defaults)


# ---------------------------------------------------------------------------
# Airtime ledger
# ---------------------------------------------------------------------------


class TestLedgerConservation:
    @pytest.mark.parametrize("scenario,seed", [
        ("hidden-node", 0), ("hidden-node", 7), ("contention", 3),
    ])
    def test_fractions_sum_to_one(self, scenario, seed):
        spec = builtin_scenario(scenario, n_packets=25, duration_us=40_000.0)
        result = run_scenario(spec, rng=seed, lens=NetLens())
        ledger = result.ledger
        for name, row in ledger["per_node"].items():
            assert sum(row["fractions"].values()) == pytest.approx(
                1.0, abs=1e-9), name
            state_us = (row["tx_us"] + row["busy_us"]
                        + row["backoff_us"] + row["idle_us"])
            assert state_us == pytest.approx(ledger["duration_us"], abs=1e-6)

    def test_tx_time_splits_exactly_by_kind(self):
        result = run_scenario(_small_spec(control="explicit"), rng=1,
                              lens=NetLens())
        for name, row in result.ledger["per_node"].items():
            split = row["tx_data_us"] + row["tx_control_us"] + row["tx_ack_us"]
            assert split == pytest.approx(row["tx_us"], abs=1e-6), name

    @pytest.mark.parametrize("seed", [0, 9])
    def test_multi_bss_roaming_conserves_airtime(self, seed):
        """Conservation holds with beacons, roaming, and mobile nodes."""
        spec = builtin_scenario("campus-roaming", duration_us=150_000.0)
        result = run_scenario(spec, rng=seed, lens=NetLens())
        ledger = result.ledger
        for name, row in ledger["per_node"].items():
            assert sum(row["fractions"].values()) == pytest.approx(
                1.0, abs=1e-9), name
            split = (row["tx_data_us"] + row["tx_control_us"]
                     + row["tx_ack_us"] + row["tx_beacon_us"])
            assert split == pytest.approx(row["tx_us"], abs=1e-6), name
        # The per-BSS rollup partitions exactly what the nodes report.
        for key in ("tx_us", "busy_us", "idle_us"):
            assert sum(v[key] for v in ledger["per_bss"].values()) == \
                pytest.approx(
                    sum(r[key] for r in ledger["per_node"].values()),
                    abs=1e-6)

    def test_channel_busy_matches_event_union(self):
        lens = NetLens()
        result = run_scenario(_small_spec(), rng=2, lens=lens)
        ledger = result.ledger
        intervals, _horizon = extract_intervals(result.events)
        # Sweep the union of on-air intervals, clipped at the horizon the
        # ledger closed on (a transmission may still be in flight there).
        end = ledger["duration_us"]
        edges = sorted(
            [(min(iv.start_us, end), 1) for iv in intervals]
            + [(min(iv.end_us, end), -1) for iv in intervals]
        )
        busy, active, opened = 0.0, 0, 0.0
        for t, delta in edges:
            if active == 0 and delta > 0:
                opened = t
            active += delta
            if active == 0 and delta < 0:
                busy += t - opened
        assert busy == pytest.approx(ledger["channel_busy_us"], abs=1e-6)

    def test_ledger_in_result_dict(self):
        result = run_scenario(_small_spec(), rng=0, lens=NetLens())
        d = result.to_dict()
        assert set(d["ledger"]["per_node"]) == {"ap", "sta_near", "sta_hidden"}
        assert set(d["profile"]) >= {"events_per_sec", "sim_wall_ratio"}

    def test_disabled_lens_attaches_nothing(self):
        result = run_scenario(_small_spec(), rng=0)
        assert result.ledger is None and result.profile is None
        assert result.events is None
        assert "ledger" not in result.to_dict()


class TestControlAirtime:
    def test_cos_strictly_below_explicit(self):
        kw = dict(n_packets=40, duration_us=60_000.0)
        explicit = run_scenario(
            builtin_scenario("hidden-node", control="explicit", **kw),
            rng=0, lens=NetLens(trace=False, profile=False))
        cos = run_scenario(
            builtin_scenario("hidden-node", control="cos", **kw),
            rng=0, lens=NetLens(trace=False, profile=False))
        frac_explicit = explicit.ledger["control_airtime_fraction"]
        frac_cos = cos.ledger["control_airtime_fraction"]
        assert frac_explicit > 0.0
        assert frac_cos < frac_explicit
        assert frac_cos == 0.0  # CoS feedback rides silences: zero airtime


# ---------------------------------------------------------------------------
# Event trace: schema + determinism
# ---------------------------------------------------------------------------


class TestTraceSchema:
    def test_golden_record_shape(self):
        result = run_scenario(_small_spec(), rng=0, lens=NetLens())
        assert result.events
        for ev in result.events:
            assert ev["type"] == "net"
            assert ev["schema"] == SCHEMA_VERSION
            assert ev["event"] in NET_EVENT_NAMES
            assert isinstance(ev["seq"], int)
            assert ev["t_us"] >= 0.0
            assert "wall_ts" in ev  # wall_clock=True is the default

    def test_seq_is_emission_order(self):
        result = run_scenario(_small_spec(), rng=0, lens=NetLens())
        assert [ev["seq"] for ev in result.events] == list(
            range(len(result.events)))

    def test_tx_end_carries_cause_taxonomy(self):
        result = run_scenario(_small_spec(), rng=0, lens=NetLens())
        causes = [ev["cause"] for ev in result.events
                  if ev["event"] == "tx_end" and "cause" in ev]
        assert causes, "no addressed tx_end records"
        assert set(causes) <= set(NET_FAILURE_CAUSES)

    def test_wall_clock_off_removes_wall_ts(self):
        result = run_scenario(_small_spec(), rng=0,
                              lens=NetLens(wall_clock=False))
        assert all("wall_ts" not in ev for ev in result.events)

    def test_max_events_cap(self):
        lens = NetLens(max_events=10)
        run_scenario(_small_spec(), rng=0, lens=lens)
        assert len(lens.events) == 10
        assert lens.n_events_dropped > 0

    def test_classify_net_failure(self):
        assert classify_net_failure(True, "ok") == "ok"
        assert classify_net_failure(False, "collision") == "collision"
        assert classify_net_failure(False, "rx_busy") == "rx_busy"
        # Unknown reasons fold into channel_error, never crash.
        assert classify_net_failure(False, "???") == "channel_error"


class TestTraceDeterminism:
    def test_serial_vs_pool_byte_identical(self):
        spec = _small_spec()
        lens_cfg = {"wall_clock": False, "profile": False}
        serial = run_scenario_sweep(spec, n_trials=2, seed=5, workers=0,
                                    lens=lens_cfg)
        pooled = run_scenario_sweep(spec, n_trials=2, seed=5, workers=2,
                                    lens=lens_cfg)
        for a, b in zip(serial, pooled):
            ev_a = sorted(a.events, key=lambda e: (e["t_us"], e["seq"]))
            ev_b = sorted(b.events, key=lambda e: (e["t_us"], e["seq"]))
            assert json.dumps(ev_a) == json.dumps(ev_b)
            assert a.ledger == b.ledger

    def test_multi_bss_serial_vs_pool_byte_identical(self):
        """The roaming scenario (beacons, hand-offs, traffic generators,
        grid-culled medium) replays byte-for-byte across executors."""
        spec = builtin_scenario("campus-roaming", duration_us=150_000.0)
        lens_cfg = {"wall_clock": False, "profile": False}
        serial = run_scenario_sweep(spec, n_trials=2, seed=3, workers=0,
                                    lens=lens_cfg)
        pooled = run_scenario_sweep(spec, n_trials=2, seed=3, workers=2,
                                    lens=lens_cfg)
        for a, b in zip(serial, pooled):
            assert json.dumps(a.events) == json.dumps(b.events)
            assert a.ledger == b.ledger
            assert a.to_dict() == b.to_dict()
            assert a.n_roams == b.n_roams and a.n_roams > 0


# ---------------------------------------------------------------------------
# Profiler
# ---------------------------------------------------------------------------


class TestProfiler:
    def test_profile_reports_throughput(self):
        result = run_scenario(_small_spec(), rng=0, lens=NetLens())
        prof = result.profile
        assert prof["n_events"] == result.n_events > 0
        assert prof["events_per_sec"] > 0
        assert prof["sim_wall_ratio"] > 0
        assert prof["by_type"]
        for stats in prof["by_type"].values():
            assert stats["count"] > 0
            assert stats["p95_us"] >= stats["p50_us"] >= 0.0

    def test_profiler_uninstalled_after_disabled_run(self):
        from repro.net.simulator import NetSimulator

        sim = NetSimulator(_small_spec(), rng=0)
        assert sim.scheduler.profiler is None


# ---------------------------------------------------------------------------
# Metrics folding
# ---------------------------------------------------------------------------


class TestMetricsFold:
    def test_ledger_folds_into_registry(self):
        lens = NetLens()
        result = run_scenario(_small_spec(), rng=0, lens=lens)
        reg = get_registry()
        airtime = reg.counter("repro_net_airtime_us_total")
        total = sum(
            airtime.labels(node=name, state=state).value
            for name in result.ledger["per_node"]
            for state in NODE_STATES
        )
        n_nodes = len(result.ledger["per_node"])
        assert total == pytest.approx(
            n_nodes * result.ledger["duration_us"], abs=1e-6)
        assert reg.gauge("repro_net_events_per_sec").value > 0

    def test_sweep_merges_worker_metrics(self):
        spec = _small_spec()
        run_scenario_sweep(spec, n_trials=2, seed=5, workers=2,
                           lens={"wall_clock": False})
        fam = get_registry().counter("repro_net_channel_busy_us_total")
        assert fam.value > 0


# ---------------------------------------------------------------------------
# JSONL robustness (satellite: truncated final line)
# ---------------------------------------------------------------------------


class TestReadJsonlTruncation:
    def test_truncated_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"trunc')
        assert list(read_jsonl(path)) == [{"a": 1}, {"b": 2}]

    def test_truncated_final_line_strict_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"a": 1}\n{"trunc')
        with pytest.raises(json.JSONDecodeError):
            list(read_jsonl(path, strict=True))

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"a": 1}\nnot json at all\n{"b": 2}\n')
        with pytest.raises(json.JSONDecodeError):
            list(read_jsonl(path))


# ---------------------------------------------------------------------------
# Summarize + timeline over net traces
# ---------------------------------------------------------------------------


class TestNetSummaries:
    def test_summarize_counts_net_events(self):
        result = run_scenario(_small_spec(), rng=0, lens=NetLens())
        summary = summarize_events(result.events)
        assert summary.n_net_events == len(result.events)
        assert summary.net_events["tx_start"] > 0
        assert set(summary.net_causes) <= set(NET_FAILURE_CAUSES)
        assert summary.n_spans == 0

    def test_render_timeline(self):
        result = run_scenario(_small_spec(), rng=0, lens=NetLens())
        text = render_timeline(result.events, width=40)
        assert "channel" in text
        assert "sta_hidden" in text and "sta_near" in text
        assert "#" in text and "D" in text
        assert "airtime %" in text

    def test_render_timeline_empty(self):
        assert "no net tx_start events" in render_timeline([])


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------


class TestLensCli:
    def test_ledger_out_stdout(self, capsys):
        assert main(["--quiet", "net", "run", "hidden-node",
                     "--ledger-out", "-"]) == 0
        out = capsys.readouterr().out
        ledger = json.loads(out[out.index("{"):])
        assert ledger["scenario"] == "hidden-node"
        for row in ledger["per_node"].values():
            assert sum(row["fractions"].values()) == pytest.approx(
                1.0, abs=1e-9)

    def test_timeline_roundtrip(self, tmp_path, capsys):
        trace = tmp_path / "net.jsonl"
        assert main(["--quiet", "net", "run", "hidden-node",
                     "--timeline-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["--quiet", "obs", "timeline", str(trace),
                     "--width", "50"]) == 0
        out = capsys.readouterr().out
        assert "Airtime timeline" in out
        assert "(channel)" in out

    def test_summarize_json_includes_net_fields(self, tmp_path, capsys):
        trace = tmp_path / "net.jsonl"
        assert main(["--quiet", "net", "run", "hidden-node",
                     "--timeline-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["--quiet", "obs", "summarize", str(trace),
                     "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_net_events"] > 0
        assert summary["net_events"]["tx_start"] > 0
        assert "ok" in summary["net_causes"]

    def test_summary_json_carries_ledger_when_lens_on(self, tmp_path,
                                                      capsys):
        ledger_path = tmp_path / "ledger.json"
        assert main(["--quiet", "net", "run", "hidden-node",
                     "--ledger-out", str(ledger_path),
                     "--json", "-"]) == 0
        out = capsys.readouterr().out
        summary = json.loads(out[out.index("{"):])
        assert "ledger" in summary and "profile" in summary
        assert summary["ledger"]["channel_busy_fraction"] > 0


# ---------------------------------------------------------------------------
# Unified summary shape (satellite: CLI JSON derives from to_dict)
# ---------------------------------------------------------------------------


class TestSummaryUnification:
    def test_summary_keys_match_to_dict(self):
        from repro.net import summarize_results

        spec = _small_spec()
        results = run_scenario_sweep(spec, n_trials=2, seed=1)
        summary = summarize_results(results)
        expected = set(results[0].to_dict()) | {"n_trials"}
        assert set(summary) == expected
        per_node = results[0].to_dict()["per_node"]
        for name, row in per_node.items():
            assert set(summary["per_node"][name]) >= set(row)

    def test_all_none_column_stays_none(self):
        from repro.net.simulator import _combine_values

        assert _combine_values([None, None]) is None
        assert _combine_values([{"a": None}, {"a": None}]) == {"a": None}
        assert _combine_values([{"a": 1.0}, {}]) == {"a": 0.5}
        assert _combine_values([{"a": "x"}, {"a": "x"}]) == {"a": "x"}
        assert _combine_values([2, 4]) == 3.0
