"""Unit tests for temporal channel evolution."""

import numpy as np
import pytest

from repro.channel.multipath import TappedDelayLine
from repro.channel.temporal import (
    GaussMarkovEvolution,
    doppler_for_speed,
    jakes_correlation,
)


class TestJakes:
    def test_zero_lag(self):
        assert jakes_correlation(0.0, 10.0) == pytest.approx(1.0)

    def test_decreases_initially(self):
        rhos = [jakes_correlation(t, 12.0) for t in (0.001, 0.005, 0.01, 0.02)]
        assert all(b < a for a, b in zip(rhos, rhos[1:]))

    def test_symmetric_in_tau(self):
        assert jakes_correlation(-0.01, 12.0) == jakes_correlation(0.01, 12.0)

    def test_doppler_walking_2ghz(self):
        fd = doppler_for_speed(1.52, 2.412e9)
        assert 11.0 < fd < 13.5

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            doppler_for_speed(-1.0)


class TestGaussMarkov:
    def test_zero_tau_no_change(self, rng):
        tdl = TappedDelayLine.from_profile(4, 1.0, rng)
        taps = tdl.taps.copy()
        GaussMarkovEvolution(tdl=tdl, rng=rng).advance(0.0)
        assert np.array_equal(tdl.taps, taps)

    def test_negative_tau_rejected(self, rng):
        evo = GaussMarkovEvolution(tdl=TappedDelayLine.identity(), rng=rng)
        with pytest.raises(ValueError):
            evo.advance(-1.0)

    def test_small_tau_small_change(self, rng):
        tdl = TappedDelayLine.from_profile(4, 1.0, rng)
        before = tdl.taps.copy()
        GaussMarkovEvolution(tdl=tdl, doppler_hz=1.0, rng=rng).advance(1e-3)
        assert np.linalg.norm(tdl.taps - before) < 0.1 * np.linalg.norm(before)

    def test_average_power_preserved(self):
        """Tap energy is statistically invariant under evolution."""
        energies = []
        for seed in range(60):
            local = np.random.default_rng(seed)
            tdl = TappedDelayLine.from_profile(4, 1.0, local)
            evo = GaussMarkovEvolution(tdl=tdl, doppler_hz=30.0, rng=local)
            for _ in range(20):
                evo.advance(0.01)
            energies.append(np.sum(np.abs(tdl.taps) ** 2))
        assert np.mean(energies) == pytest.approx(1.0, rel=0.15)

    def test_empirical_correlation_matches_jakes(self):
        """One-step correlation of a tap ≈ J0(2 pi fd tau)."""
        tau, fd = 0.01, 12.0
        before, after = [], []
        for seed in range(400):
            local = np.random.default_rng(seed)
            tdl = TappedDelayLine.from_profile(1, 1.0, local)
            evo = GaussMarkovEvolution(tdl=tdl, doppler_hz=fd, rng=local)
            b = tdl.taps[0]
            evo.advance(tau)
            before.append(b)
            after.append(tdl.taps[0])
        before = np.array(before)
        after = np.array(after)
        rho_hat = np.real(
            np.mean(before * np.conj(after))
            / np.sqrt(np.mean(np.abs(before) ** 2) * np.mean(np.abs(after) ** 2))
        )
        assert rho_hat == pytest.approx(jakes_correlation(tau, fd), abs=0.08)

    def test_snapshot_is_independent_copy(self, rng):
        tdl = TappedDelayLine.from_profile(3, 1.0, rng)
        evo = GaussMarkovEvolution(tdl=tdl, rng=rng)
        snap = evo.snapshot()
        evo.advance(0.1)
        assert not np.array_equal(snap.taps, tdl.taps)
