"""Scenario-level regression tests: hidden node, capture, determinism."""

import pytest

from repro.net import (
    FlowSpec,
    InterfererSpec,
    MobilitySpec,
    NodeSpec,
    ScenarioSpec,
    builtin_scenario,
    run_scenario,
    run_scenario_sweep,
)


@pytest.fixture(scope="module")
def hidden_cos():
    return run_scenario(builtin_scenario("hidden-node", control="cos"), rng=1)


@pytest.fixture(scope="module")
def hidden_explicit():
    return run_scenario(builtin_scenario("hidden-node", control="explicit"), rng=1)


class TestHiddenNode:
    def test_stations_are_mutually_hidden(self):
        topo = builtin_scenario("hidden-node").topology()
        assert topo.senses("ap", "sta_near")
        assert topo.senses("ap", "sta_hidden")
        assert not topo.senses("sta_near", "sta_hidden")

    def test_hidden_station_sinr_goes_negative(self, hidden_cos):
        # During an overlap the near frame is ~18 dB hotter at the AP, so
        # the hidden frame's SINR dives below zero while the near frame
        # stays above the capture threshold.
        near = hidden_cos.per_node["sta_near"]
        hidden = hidden_cos.per_node["sta_hidden"]
        assert hidden.min_sinr_db < 0.0
        assert near.min_sinr_db > 4.0

    def test_hidden_station_delivery_collapses(self, hidden_cos):
        near = hidden_cos.per_node["sta_near"]
        hidden = hidden_cos.per_node["sta_hidden"]
        assert hidden.delivery_ratio < near.delivery_ratio - 0.15
        assert hidden.completion_ratio < near.completion_ratio / 2
        assert hidden.loss_reasons.get("collision", 0) > 0
        # Capture: the near station never loses a frame to a collision —
        # it rides over the hidden station's interference.
        assert near.loss_reasons.get("collision", 0) == 0

    def test_cos_raises_goodput_without_losing_any_node(
        self, hidden_cos, hidden_explicit
    ):
        assert (
            hidden_cos.aggregate_goodput_mbps
            > hidden_explicit.aggregate_goodput_mbps
        )
        for node in ("sta_near", "sta_hidden"):
            assert (
                hidden_cos.goodput_mbps(node)
                >= hidden_explicit.goodput_mbps(node)
            )

    def test_explicit_pays_airtime_and_latency(self, hidden_cos, hidden_explicit):
        assert hidden_cos.control_airtime_fraction == 0.0
        assert hidden_explicit.control_airtime_fraction > 0.02
        lat_cos = hidden_cos.per_node["sta_near"].mean_control_latency_us
        lat_explicit = hidden_explicit.per_node["sta_near"].mean_control_latency_us
        assert lat_cos < lat_explicit


class TestCaptureThreshold:
    def _run(self, capture_db):
        import dataclasses

        spec = builtin_scenario("hidden-node", n_packets=200,
                                duration_us=100_000.0)
        spec = dataclasses.replace(
            spec, radio=dataclasses.replace(spec.radio,
                                            capture_threshold_db=capture_db)
        )
        return run_scenario(spec, rng=3)

    def test_raising_capture_threshold_kills_capture(self):
        # With the gate pushed above the near station's overlap SINR
        # (~18 dB), *both* frames of every overlap die instead of the
        # strong one surviving — the near station now loses frames to
        # collisions it previously captured through.
        normal = self._run(4.0)
        strict = self._run(25.0)
        near_normal = normal.per_node["sta_near"]
        near_strict = strict.per_node["sta_near"]
        assert near_normal.loss_reasons.get("collision", 0) == 0
        assert near_strict.loss_reasons.get("collision", 0) > 0
        assert near_strict.delivery_ratio < near_normal.delivery_ratio


class TestDeterminism:
    def test_serial_and_parallel_sweeps_are_identical(self):
        spec = builtin_scenario("hidden-node", n_packets=80,
                                duration_us=60_000.0)
        serial = run_scenario_sweep(spec, n_trials=3, seed=42, workers=0)
        parallel = run_scenario_sweep(spec, n_trials=3, seed=42, workers=2)
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in parallel]

    def test_same_seed_same_result(self):
        spec = builtin_scenario("hidden-node", n_packets=40,
                                duration_us=40_000.0)
        a = run_scenario(spec, rng=9)
        b = run_scenario(spec, rng=9)
        assert a.to_dict() == b.to_dict()


class TestSources:
    def test_interferer_collides_frames(self):
        # A loud co-channel burst source right next to the receiver:
        # bursts land as interference and kill frames mid-flight.
        spec = ScenarioSpec(
            name="interfered",
            nodes=(NodeSpec("tx", 0.0, 0.0), NodeSpec("rx", 15.0, 0.0)),
            flows=(FlowSpec(src="tx", dst="rx", n_packets=60),),
            interferers=(InterfererSpec(
                name="jammer", x=16.0, y=0.0, power_dbm=17.0,
                burst_us=400.0, period_us=800.0, probability=0.9,
            ),),
            duration_us=150_000.0,
        )
        result = run_scenario(spec, rng=5)
        stats = result.per_node["tx"]
        assert result.airtime_us.get("interference", 0.0) > 0.0
        assert stats.loss_reasons.get("collision", 0) > 0
        assert stats.delivery_ratio < 0.9

    def test_mobility_degrades_link(self):
        # The transmitter walks away from the receiver; per-attempt SINR
        # must trend down as the path loss grows.
        spec = ScenarioSpec(
            name="walkaway",
            nodes=(NodeSpec("tx", 5.0, 0.0), NodeSpec("rx", 0.0, 0.0)),
            flows=(FlowSpec(src="tx", dst="rx", n_packets=40,
                            interval_us=5_000.0),),
            mobility=(MobilitySpec(
                node="tx",
                waypoints=((0.0, 5.0, 0.0), (200_000.0, 120.0, 0.0)),
            ),),
            duration_us=220_000.0,
            data_rate_mbps=6,
        )
        result = run_scenario(spec, rng=2)
        samples = result.per_node["tx"].sinr_samples_db
        assert len(samples) >= 10
        assert samples[-1] < samples[0] - 20.0
