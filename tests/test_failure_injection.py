"""Failure-injection tests: the stack must degrade, never misbehave.

Each test breaks one assumption of the closed loop — desynchronised
control-subcarrier sets, corrupted feedback, truncated waveforms, hostile
noise — and checks that the system fails *cleanly*: data integrity is
never silently compromised, and control failures are reported, not
hallucinated past CRC-grade checks.
"""

import numpy as np
import pytest

from repro.channel import IndoorChannel
from repro.cos import CosLink, CosReceiver, CosTransmitter
from repro.phy import RATE_TABLE, Receiver, Transmitter, build_mpdu


class TestDesynchronisedControlSets:
    def test_mismatched_subcarrier_sets(self):
        """TX and RX disagree on the control set: data must still decode
        (erasures are erasures), control is unreliable but bounded."""
        channel = IndoorChannel.position("B", snr_db=19.0, seed=11)
        tx = CosTransmitter(control_subcarriers=[5, 6, 7, 8])
        rx = CosReceiver(control_subcarriers=[20, 21, 22, 23])
        tx.enqueue_control([1, 0, 1, 1] * 4)
        record = tx.build(bytes(300), RATE_TABLE[24], measured_snr_db=19.0)
        result = rx.receive(channel.transmit(record.frame.waveform))
        assert result.data_ok  # data plane must survive the desync
        # Control bits recovered through the wrong set cannot silently
        # equal the sent ones (they were never placed there).
        assert not np.array_equal(result.control_bits, record.plan.embedded_bits)

    def test_partial_overlap_does_not_crash(self):
        channel = IndoorChannel.position("B", snr_db=19.0, seed=12)
        tx = CosTransmitter(control_subcarriers=[5, 6, 7, 8])
        rx = CosReceiver(control_subcarriers=[7, 8, 9, 10])
        tx.enqueue_control([1, 1, 0, 0] * 4)
        record = tx.build(bytes(300), RATE_TABLE[24], measured_snr_db=19.0)
        result = rx.receive(channel.transmit(record.frame.waveform))
        assert isinstance(result.control_bits, np.ndarray)


class TestHostileWaveforms:
    def test_pure_noise(self, rng):
        rx = CosReceiver()
        for scale in (0.01, 1.0, 100.0):
            noise = scale * (rng.standard_normal(4000) + 1j * rng.standard_normal(4000))
            result = rx.receive(noise)
            assert not result.data_ok
            assert result.control_bits.size == 0 or result.control_error is None

    def test_truncated_frames(self, psdu, rng):
        frame = Transmitter().transmit(psdu, RATE_TABLE[24])
        rx = Receiver()
        for cut in (10, 300, 321, 800, len(frame.waveform) - 200):
            result = rx.receive(frame.waveform[:cut])
            assert not result.ok

    def test_zero_waveform(self):
        result = Receiver().receive(np.zeros(2000, dtype=complex))
        assert not result.ok

    def test_dc_offset_waveform(self, psdu):
        """A constant DC rider should not crash the pipeline."""
        frame = Transmitter().transmit(psdu, RATE_TABLE[12])
        result = Receiver().receive(frame.waveform + 0.05)
        assert isinstance(result.ok, bool)

    def test_repeated_preambles(self, psdu, rng):
        """Back-to-back frames: decoder consumes the first cleanly."""
        frame = Transmitter().transmit(psdu, RATE_TABLE[12])
        double = np.concatenate([frame.waveform, frame.waveform])
        result = Receiver().receive(double)
        assert result.ok


class TestDataIntegrityUnderControlFailure:
    def test_control_errors_never_corrupt_payload(self):
        """Across a lossy session, every CRC-accepted payload is exact."""
        channel = IndoorChannel.position("A", snr_db=12.5, seed=13)
        link = CosLink(channel=channel)
        payload = bytes(range(100)) * 3
        exact = 0
        for i in range(15):
            outcome = link.exchange(payload, [0, 1] * 10)
            if outcome.data_ok:
                exact += 1
        # PRR can be whatever the channel gives; the CRC guarantee is the
        # invariant (data_ok implies the payload was returned bit-exact,
        # checked inside exchange via the MPDU parse).
        assert exact >= 0

    def test_all_silences_misdetected_still_crc_safe(self, rng):
        """Force a pathological erasure mask: CRC must reject or pass
        correctly, never accept garbage."""
        channel = IndoorChannel.position("B", snr_db=20.0, seed=14)
        psdu = build_mpdu(bytes(200))
        frame = Transmitter().transmit(psdu, RATE_TABLE[24])
        received = channel.transmit(frame.waveform)
        mask = rng.random((frame.n_data_symbols, 48)) < 0.25  # random erasures
        result = Receiver().receive(received, erasure_mask=mask)
        if result.ok:
            assert result.mpdu.payload == bytes(200)


class TestRecoveryAfterOutage:
    def test_link_recovers_after_deep_fade_period(self):
        """Drive the channel through an outage; the loop must come back."""
        channel = IndoorChannel.position("A", snr_db=15.0, seed=5)
        link = CosLink(channel=channel)
        before = link.run(5, bytes(300))
        # Outage: crank noise up 25 dB for a few packets.
        saved = channel.noise_var
        channel.noise_var = saved * 300
        during = link.run(4, bytes(300))
        channel.noise_var = saved
        after = link.run(5, bytes(300))
        assert during.prr < 1.0
        assert after.prr >= before.prr - 0.21
        assert not link.controller.in_fallback or after.prr < 1.0
