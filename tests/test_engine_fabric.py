"""Tests for the sweep fabric: work queue, ShardedExecutor, service.

Covers the claim protocol (leases, stealing, poisoning), bit-for-bit
equality of sharded vs. serial sweeps, the ``repro engine worker`` CLI
end-to-end against a live queue, resume-after-SIGKILL via the result
store, and the sim-as-a-service HTTP front-end (submit → poll → result →
metrics scrape).
"""

import json
import os
import pickle
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.engine import core
from repro.engine import queue as fsqueue
from repro.engine.executors import ShardedExecutor
from repro.engine.spec import TrialError, make_specs
from repro.engine.store import ResultStore
from repro.obs.metrics import MetricsRegistry, set_registry

REPO = Path(__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def _isolated_registry():
    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)


def _subprocess_env():
    """Workers must be able to import repro *and* this test module."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src"), str(REPO)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env.pop("REPRO_STORE", None)
    return env


# ---------------------------------------------------------------------------
# Module-level trial functions (picklable across spawn and CLI workers).
# ---------------------------------------------------------------------------

def _draw_trial(spec):
    rng = spec.rng()
    return (spec["x"], float(rng.normal()), rng.integers(0, 1 << 30).item())


def _failing_trial(spec):
    if spec["x"] == 3:
        raise ValueError("x=3 is cursed")
    return spec["x"]


def _slow_trial(spec):
    rng = spec.rng()
    deadline = time.perf_counter() + 0.2
    while time.perf_counter() < deadline:
        pass
    return float(rng.normal())


PARAMS = [{"x": i} for i in range(8)]


# ---------------------------------------------------------------------------
# Queue protocol
# ---------------------------------------------------------------------------

class TestQueueProtocol:
    def test_create_job_and_status(self, tmp_path):
        job_id = fsqueue.create_job(tmp_path, _draw_trial,
                                    make_specs(PARAMS, seed=0), chunk_size=3)
        status = fsqueue.job_status(tmp_path, job_id)
        assert status["n_specs"] == 8
        assert status["n_chunks"] == 3
        assert status["chunks_pending"] == 3
        assert status["chunks_done"] == 0
        assert status["cancelled"] is False

    def test_drain_worker_completes_a_job(self, tmp_path):
        specs = make_specs(PARAMS, seed=0)
        job_id = fsqueue.create_job(tmp_path, _draw_trial, specs, chunk_size=2)
        n = fsqueue.worker_loop(tmp_path, drain=True, isolate_obs=False)
        assert n == 4
        chunks = list(fsqueue.iter_job_results(tmp_path, job_id, timeout_s=5.0))
        results = {}
        for chunk in chunks:
            assert chunk.error is None
            results.update(zip(chunk.indices, chunk.results))
        assert [results[i] for i in range(8)] == core.run_trials(
            make_specs(PARAMS, seed=0), _draw_trial)

    def test_claims_are_exclusive(self, tmp_path):
        fsqueue.create_job(tmp_path, _draw_trial, make_specs(PARAMS[:2], seed=0),
                           chunk_size=1)
        job_dir = next((tmp_path / "jobs").iterdir())
        first = fsqueue.claim_next_chunk(job_dir, "w1")
        second = fsqueue.claim_next_chunk(job_dir, "w2")
        third = fsqueue.claim_next_chunk(job_dir, "w3")
        assert first == ("00000", 1)
        assert second == ("00001", 1)
        assert third is None  # everything leased, nothing stale

    def test_stale_lease_is_stolen_and_result_matches_clean_run(self, tmp_path):
        specs = make_specs(PARAMS, seed=0)
        job_id = fsqueue.create_job(tmp_path, _draw_trial, specs, chunk_size=2)
        job_dir = tmp_path / "jobs" / job_id
        # A worker claimed chunk 0 and died: stale claim, no heartbeat.
        claim = fsqueue.claim_next_chunk(job_dir, "dead-worker", lease_s=0.05)
        assert claim == ("00000", 1)
        old = time.time() - 60.0
        os.utime(job_dir / "claims" / "00000.json", times=(old, old))
        n = fsqueue.worker_loop(tmp_path, drain=True, lease_s=0.05,
                                isolate_obs=False)
        assert n == 4  # the stolen chunk plus the three fresh ones
        results = {}
        for chunk in fsqueue.iter_job_results(tmp_path, job_id, timeout_s=5.0):
            assert chunk.error is None
            results.update(zip(chunk.indices, chunk.results))
        # Retried chunk is bit-for-bit what a clean run produces.
        clean = core.run_trials(make_specs(PARAMS, seed=0), _draw_trial)
        assert pickle.dumps([results[i] for i in range(8)]) == pickle.dumps(clean)

    def test_poisoned_after_max_attempts(self, tmp_path):
        specs = make_specs(PARAMS[:2], seed=0)
        job_id = fsqueue.create_job(tmp_path, _draw_trial, specs, chunk_size=1)
        job_dir = tmp_path / "jobs" / job_id
        # Chunk 0 has burned its attempts: stale claim at the cap.
        (job_dir / "claims" / "00000.json").write_text(json.dumps(
            {"worker": "crash-loop", "attempt": 3, "claimed_ts": 0.0}))
        old = time.time() - 60.0
        os.utime(job_dir / "claims" / "00000.json", times=(old, old))
        fsqueue.worker_loop(tmp_path, drain=True, lease_s=0.05, max_attempts=3,
                            isolate_obs=False)
        assert (job_dir / "poison" / "00000.json").exists()
        chunks = list(fsqueue.iter_job_results(tmp_path, job_id, timeout_s=5.0))
        errors = [c for c in chunks if c.error is not None]
        assert len(errors) == 1
        assert "poisoned" in errors[0].error["message"]

    def test_cancel_stops_claiming(self, tmp_path):
        job_id = fsqueue.create_job(tmp_path, _draw_trial,
                                    make_specs(PARAMS, seed=0), chunk_size=2)
        fsqueue.cancel_job(tmp_path, job_id)
        n = fsqueue.worker_loop(tmp_path, drain=True, isolate_obs=False)
        assert n == 0
        assert fsqueue.job_status(tmp_path, job_id)["cancelled"] is True


# ---------------------------------------------------------------------------
# ShardedExecutor
# ---------------------------------------------------------------------------

class TestShardedExecutor:
    def test_two_shards_match_serial_bit_for_bit(self):
        serial = core.run_trials(make_specs(PARAMS, seed=9), _draw_trial)
        sharded = core.run_trials(
            make_specs(PARAMS, seed=9), _draw_trial,
            ShardedExecutor(2, lease_s=10.0, timeout_s=120.0))
        assert pickle.dumps(sharded) == pickle.dumps(serial)

    def test_failing_trial_raises_trial_error_with_context(self):
        with pytest.raises(TrialError) as err:
            core.run_trials(
                make_specs(PARAMS, seed=9), _failing_trial,
                ShardedExecutor(2, chunk_size=1, lease_s=10.0, timeout_s=120.0))
        assert "cursed" in str(err.value)
        assert err.value.params == {"x": 3}

    def test_metrics_snapshots_fold_into_parent(self):
        registry = MetricsRegistry()
        core.run_trials(make_specs(PARAMS, seed=9), _metric_trial,
                        ShardedExecutor(2, lease_s=10.0, timeout_s=120.0),
                        registry=registry)
        assert registry.counter("fabric_test_trials_total").value == len(PARAMS)

    def test_workers_zero_requires_queue_dir(self):
        with pytest.raises(ValueError, match="queue_dir"):
            ShardedExecutor(0)

    def test_no_workers_times_out_without_external_help(self, tmp_path):
        with pytest.raises(TimeoutError):
            core.run_trials(
                make_specs(PARAMS[:2], seed=0), _draw_trial,
                ShardedExecutor(0, queue_dir=str(tmp_path), timeout_s=0.3))


def _metric_trial(spec):
    from repro.obs.metrics import get_registry

    get_registry().counter("fabric_test_trials_total").inc()
    return spec["x"]


# ---------------------------------------------------------------------------
# repro engine worker CLI, end to end
# ---------------------------------------------------------------------------

class TestWorkerCli:
    def test_external_cli_workers_serve_a_sharded_sweep(self, tmp_path):
        serial = core.run_trials(make_specs(PARAMS, seed=4), _draw_trial)
        workers = [
            subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "engine", "worker",
                 "--queue", str(tmp_path), "--max-seconds", "120",
                 "--lease", "10"],
                env=_subprocess_env(), cwd=str(REPO),
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
            for _ in range(2)
        ]
        try:
            sharded = core.run_trials(
                make_specs(PARAMS, seed=4), _draw_trial,
                ShardedExecutor(0, queue_dir=str(tmp_path), timeout_s=120.0))
        finally:
            for w in workers:
                w.terminate()
            for w in workers:
                w.wait(timeout=10)
        assert pickle.dumps(sharded) == pickle.dumps(serial)

    def test_drain_worker_cli_exits_on_empty_queue(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "engine", "worker",
             "--queue", str(tmp_path), "--drain"],
            env=_subprocess_env(), cwd=str(REPO),
            capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0
        assert "processed 0 chunk(s)" in proc.stdout


# ---------------------------------------------------------------------------
# Resume after SIGKILL: the store replays everything already finished
# ---------------------------------------------------------------------------

_KILL_SCRIPT = """
import sys
from repro.engine import core
from repro.engine.spec import make_specs
from repro.engine.store import ResultStore
from tests.test_engine_fabric import _slow_trial

store = ResultStore(sys.argv[1])
params = [{"x": i} for i in range(10)]
core.run_trials(make_specs(params, seed=21), _slow_trial, store=store)
"""


class TestKillResume:
    def test_resume_after_kill_recomputes_only_the_delta(self, tmp_path):
        store_dir = tmp_path / "store"
        proc = subprocess.Popen(
            [sys.executable, "-c", _KILL_SCRIPT, str(store_dir)],
            env=_subprocess_env(), cwd=str(REPO),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        # Wait until some trials have landed in the store, then SIGKILL
        # mid-sweep.
        deadline = time.monotonic() + 60.0
        n_before = 0
        while time.monotonic() < deadline:
            n_before = len(list(store_dir.glob("objects/*/*.pkl")))
            if n_before >= 2:
                break
            if proc.poll() is not None:  # pragma: no cover — too fast
                break
            time.sleep(0.02)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
        n_before = len(list(store_dir.glob("objects/*/*.pkl")))
        assert 0 < n_before < 10, "kill landed before/after the window"

        params = [{"x": i} for i in range(10)]
        registry = MetricsRegistry()
        store = ResultStore(store_dir)
        resumed = core.run_trials(make_specs(params, seed=21), _slow_trial,
                                  store=store, registry=registry)
        # Zero recomputation of finished trials, by the store counters...
        assert store.hits == n_before
        assert store.writes == 10 - n_before
        assert registry.counter("repro_store_hits_total").value == n_before
        # ...and the resumed output equals a clean serial run, bit for bit.
        clean = core.run_trials(make_specs(params, seed=21), _slow_trial)
        assert pickle.dumps(resumed) == pickle.dumps(clean)


# ---------------------------------------------------------------------------
# The service front-end
# ---------------------------------------------------------------------------

def _http(method, url, payload=None, timeout=30.0):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method,
                                 headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode()


def _poll_job(base, job_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        _, body = _http("GET", f"{base}/jobs/{job_id}")
        state = json.loads(body)["state"]
        if state in ("done", "failed"):
            return state
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} still running after {timeout_s}s")


class TestService:
    def test_submit_poll_result_and_metrics_scrape(self):
        from repro.engine.service import start_in_thread

        handle = start_in_thread(max_workers=2)
        try:
            base = handle.url
            code, body = _http("GET", f"{base}/healthz")
            assert code == 200
            assert json.loads(body)["status"] == "ok"

            code, body = _http("POST", f"{base}/jobs",
                               {"kind": "noop", "params": {"n": 6, "seed": 3}})
            assert code == 202
            job_id = json.loads(body)["job_id"]
            assert _poll_job(base, job_id) == "done"

            code, body = _http("GET", f"{base}/jobs/{job_id}/result")
            assert code == 200
            result = json.loads(body)["result"]
            assert result["n"] == 6

            # The job list contains it, newest first.
            code, body = _http("GET", f"{base}/jobs")
            assert job_id in [j["job_id"] for j in json.loads(body)["jobs"]]

            # Metrics scrape: Prometheus text with the job latency histogram.
            code, text = _http("GET", f"{base}/metrics")
            assert code == 200
            assert 'repro_service_job_seconds_count{kind="noop"} 1' in text
            assert 'repro_service_jobs_total{kind="noop",state="done"} 1.0' in text
            code, body = _http("GET", f"{base}/metrics.json")
            assert code == 200
            assert "repro_service_jobs_total" in json.loads(body)
        finally:
            handle.stop()

    def test_noop_jobs_are_deterministic_across_submissions(self):
        from repro.engine.service import start_in_thread

        handle = start_in_thread(max_workers=2)
        try:
            means = []
            for _ in range(2):
                _, body = _http("POST", f"{handle.url}/jobs",
                                {"kind": "noop", "params": {"n": 5, "seed": 7}})
                job_id = json.loads(body)["job_id"]
                assert _poll_job(handle.url, job_id) == "done"
                _, body = _http("GET", f"{handle.url}/jobs/{job_id}/result")
                means.append(json.loads(body)["result"]["mean"])
            assert means[0] == means[1]
        finally:
            handle.stop()

    def test_error_paths(self):
        from repro.engine.service import start_in_thread

        handle = start_in_thread()
        try:
            base = handle.url
            assert _http("POST", f"{base}/jobs", {"kind": "nope"})[0] == 400
            assert _http("GET", f"{base}/jobs/missing")[0] == 404
            assert _http("GET", f"{base}/nope")[0] == 404
            # A job that fails reports 500 from its result endpoint.
            _, body = _http("POST", f"{base}/jobs",
                            {"kind": "net", "params": {"scenario": "no-such"}})
            job_id = json.loads(body)["job_id"]
            assert _poll_job(base, job_id) == "failed"
            code, body = _http("GET", f"{base}/jobs/{job_id}/result")
            assert code == 500
            assert json.loads(body)["error"]
        finally:
            handle.stop()

    def test_net_job_end_to_end(self):
        from repro.engine.service import start_in_thread

        handle = start_in_thread(max_workers=2)
        try:
            _, body = _http("POST", f"{handle.url}/jobs",
                            {"kind": "net",
                             "params": {"scenario": "hidden-node",
                                        "trials": 1, "seed": 0}})
            job_id = json.loads(body)["job_id"]
            assert _poll_job(handle.url, job_id, timeout_s=120.0) == "done"
            _, body = _http("GET", f"{handle.url}/jobs/{job_id}/result")
            summary = json.loads(body)["result"]
            assert summary["scenario"] == "hidden-node"
            assert summary["aggregate_goodput_mbps"] > 0
        finally:
            handle.stop()


class TestServeCli:
    def test_engine_serve_subprocess_answers_healthz(self):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "engine", "serve",
             "--port", "0"],
            env=_subprocess_env(), cwd=str(REPO),
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
        url_holder = {}

        def _read():
            line = proc.stdout.readline()
            if "listening on " in line:
                url_holder["url"] = line.split("listening on ", 1)[1].strip()

        reader = threading.Thread(target=_read, daemon=True)
        reader.start()
        reader.join(timeout=30)
        try:
            assert url_holder.get("url"), "service never reported its URL"
            code, body = _http("GET", f"{url_holder['url']}/healthz")
            assert code == 200
            assert json.loads(body)["status"] == "ok"
        finally:
            proc.terminate()
            proc.wait(timeout=10)
