"""Tests for :mod:`repro.utils.env` — shared environment-flag parsing."""

import pytest

from repro.utils.env import env_bool, env_int, env_str

FLAG = "REPRO_TEST_FLAG"


class TestEnvBool:
    @pytest.mark.parametrize("raw", ["1", "true", "TRUE", "True", "yes", "YES",
                                     "on", "On", "  true  "])
    def test_true_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(FLAG, raw)
        assert env_bool(FLAG) is True

    @pytest.mark.parametrize("raw", ["0", "false", "FALSE", "False", "no", "NO",
                                     "off", "Off", "", "  off  "])
    def test_false_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(FLAG, raw)
        assert env_bool(FLAG, default=True) is False

    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv(FLAG, raising=False)
        assert env_bool(FLAG) is False
        assert env_bool(FLAG, default=True) is True

    @pytest.mark.parametrize("raw", ["2", "truthy", "enabled", "oui"])
    def test_garbage_raises(self, monkeypatch, raw):
        monkeypatch.setenv(FLAG, raw)
        with pytest.raises(ValueError, match=FLAG):
            env_bool(FLAG)


class TestEnvInt:
    def test_parses_integers(self, monkeypatch):
        monkeypatch.setenv(FLAG, "4")
        assert env_int(FLAG) == 4
        monkeypatch.setenv(FLAG, "  -2 ")
        assert env_int(FLAG) == -2

    def test_unset_and_empty_return_default(self, monkeypatch):
        monkeypatch.delenv(FLAG, raising=False)
        assert env_int(FLAG, 7) == 7
        monkeypatch.setenv(FLAG, "   ")
        assert env_int(FLAG, 7) == 7

    def test_garbage_raises(self, monkeypatch):
        monkeypatch.setenv(FLAG, "many")
        with pytest.raises(ValueError, match=FLAG):
            env_int(FLAG)


class TestEnvStr:
    def test_returns_value(self, monkeypatch):
        monkeypatch.setenv(FLAG, "out.json")
        assert env_str(FLAG) == "out.json"

    def test_empty_counts_as_unset(self, monkeypatch):
        monkeypatch.setenv(FLAG, "")
        assert env_str(FLAG) is None
        assert env_str(FLAG, "fallback") == "fallback"

    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv(FLAG, raising=False)
        assert env_str(FLAG) is None


class TestConsumers:
    """The flags the repo actually reads go through these helpers."""

    def test_full_mode_accepts_friendly_spellings(self, monkeypatch):
        from repro.experiments.common import full_mode

        monkeypatch.setenv("REPRO_FULL", "yes")
        assert full_mode() is True
        monkeypatch.setenv("REPRO_FULL", "off")
        assert full_mode() is False
        monkeypatch.delenv("REPRO_FULL")
        assert full_mode() is False

    def test_default_workers_reads_env(self, monkeypatch):
        from repro.engine import default_workers

        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "-1")
        assert default_workers() == 0  # clamped
        monkeypatch.delenv("REPRO_WORKERS")
        assert default_workers() == 0
