"""Tests for carrier-frequency-offset impairment and correction."""

import numpy as np
import pytest

from repro.channel import IndoorChannel
from repro.phy import RATE_TABLE, Receiver, Transmitter, build_mpdu
from repro.phy.preamble import estimate_cfo, generate_preamble


class TestCfoEstimation:
    @pytest.mark.parametrize("cfo", [0.0, 1e3, 20e3, 100e3, -60e3])
    def test_estimates_clean_preamble(self, cfo):
        pre = generate_preamble()
        n = np.arange(pre.size)
        rotated = pre * np.exp(2j * np.pi * cfo * n / 20e6)
        assert estimate_cfo(rotated) == pytest.approx(cfo, abs=50.0)

    def test_estimates_under_noise(self, rng):
        pre = generate_preamble()
        n = np.arange(pre.size)
        rotated = pre * np.exp(2j * np.pi * 40e3 * n / 20e6)
        noisy = rotated + 0.05 * (
            rng.standard_normal(pre.size) + 1j * rng.standard_normal(pre.size)
        )
        assert estimate_cfo(noisy) == pytest.approx(40e3, abs=1e3)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            estimate_cfo(np.zeros(100, dtype=complex))


class TestCfoLoopback:
    @pytest.mark.parametrize("cfo", [10e3, 120e3, -80e3])
    def test_decodes_with_offset(self, cfo, payload, psdu):
        channel = IndoorChannel.position("A", snr_db=18.0, seed=3, cfo_hz=cfo)
        frame = Transmitter().transmit(psdu, RATE_TABLE[24])
        result = Receiver().receive(channel.transmit(frame.waveform))
        assert result.ok and result.mpdu.payload == payload

    def test_fails_without_correction(self, psdu):
        """A large CFO must actually matter (the impairment is real)."""
        channel = IndoorChannel.position("C", snr_db=25.0, seed=3, cfo_hz=100e3)
        frame = Transmitter().transmit(psdu, RATE_TABLE[24])
        result = Receiver(correct_cfo=False).receive(channel.transmit(frame.waveform))
        assert not result.ok

    def test_cos_link_with_cfo(self):
        from repro.cos import CosLink

        channel = IndoorChannel.position("A", snr_db=15.0, seed=5, cfo_hz=60e3)
        link = CosLink(channel=channel)
        stats = link.run(n_packets=8, payload=b"c" * 300)
        assert stats.prr >= 0.85
