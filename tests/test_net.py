"""Unit tests for the repro.net building blocks (scheduler, topology, SINR)."""

import math

import numpy as np
import pytest

from repro.net import (
    EventScheduler,
    FlowSpec,
    NodeSpec,
    RadioSpec,
    ReceptionModel,
    ScenarioSpec,
    SigmoidErrorModel,
    Topology,
    Waypoint,
    cos_delivery_prob_for,
    sinr_db,
)
from repro.rateadapt import DEFAULT_THRESHOLDS


class TestEventScheduler:
    def test_fires_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.at(30.0, fired.append, "c")
        sched.at(10.0, fired.append, "a")
        sched.at(20.0, fired.append, "b")
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_same_instant_priority_then_fifo(self):
        sched = EventScheduler()
        fired = []
        sched.at(5.0, fired.append, "second")
        sched.at(5.0, fired.append, "third")
        sched.at(5.0, fired.append, "first", priority=-1)
        sched.run()
        assert fired == ["first", "second", "third"]

    def test_cancel_is_lazy_tombstone(self):
        sched = EventScheduler()
        fired = []
        keep = sched.at(1.0, fired.append, "keep")
        drop = sched.at(2.0, fired.append, "drop")
        sched.cancel(drop)
        assert len(sched) == 1
        sched.run()
        assert fired == ["keep"]
        sched.cancel(keep)  # cancelling a fired event is a no-op

    def test_run_horizon_is_resumable(self):
        sched = EventScheduler()
        fired = []
        sched.at(10.0, fired.append, "early")
        sched.at(100.0, fired.append, "late")
        assert sched.run(until_us=50.0) == 50.0
        assert fired == ["early"]
        sched.run()
        assert fired == ["early", "late"]

    def test_scheduling_in_the_past_raises(self):
        sched = EventScheduler()
        sched.at(10.0, lambda: None)
        sched.run()
        with pytest.raises(ValueError):
            sched.at(5.0, lambda: None)
        with pytest.raises(ValueError):
            sched.after(-1.0, lambda: None)


class TestTopology:
    def test_path_loss_at_reference_distance(self):
        topo = Topology({"a": (0, 0)})
        assert topo.path_loss_db(1.0) == pytest.approx(46.7)
        # Below the reference distance the model clamps.
        assert topo.path_loss_db(0.01) == pytest.approx(46.7)

    def test_exponent_slope(self):
        topo = Topology({"a": (0, 0)})
        # n = 3 means 30 dB per decade of distance.
        assert topo.path_loss_db(10.0) - topo.path_loss_db(1.0) == pytest.approx(30.0)

    def test_carrier_sense_is_positional(self):
        radio = RadioSpec()
        topo = Topology(
            {"ap": (0, 0), "near": (12, 0), "far": (-48, 0)}, radio=radio
        )
        assert topo.senses("ap", "near")
        assert topo.senses("ap", "far")
        # The two stations are 60 m apart: below the CS threshold.
        assert not topo.senses("near", "far")
        assert topo.rx_power_dbm("far", "near") < radio.cs_threshold_dbm

    def test_mobility_interpolation(self):
        topo = Topology(
            {"m": (0, 0)},
            mobility={"m": [Waypoint(0.0, 0.0, 0.0), Waypoint(100.0, 10.0, 0.0)]},
        )
        assert topo.position("m", 50.0) == pytest.approx((5.0, 0.0))
        # Clamped outside the waypoint interval.
        assert topo.position("m", -5.0) == pytest.approx((0.0, 0.0))
        assert topo.position("m", 500.0) == pytest.approx((10.0, 0.0))

    def test_mobility_for_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            Topology({"a": (0, 0)}, mobility={"ghost": [Waypoint(0, 0, 0)]})

    def test_noise_floor(self):
        # -174 + 10log10(20 MHz) + 7 dB NF ≈ -94 dBm.
        assert RadioSpec().noise_dbm == pytest.approx(-94.0, abs=0.1)


class TestSinr:
    def test_no_interference_reduces_to_snr(self):
        assert sinr_db(-60.0, [], -94.0) == pytest.approx(34.0)

    def test_equal_interferer_drives_sinr_to_zero(self):
        # Signal == interferer, noise negligible: SINR ~ 0 dB.
        assert sinr_db(-60.0, [-60.0], -200.0) == pytest.approx(0.0, abs=1e-6)

    def test_interference_accumulates_linearly(self):
        one = sinr_db(-60.0, [-70.0], -94.0)
        two = sinr_db(-60.0, [-70.0, -70.0], -94.0)
        assert two < one

    def test_error_model_anchored_to_thresholds(self):
        model = SigmoidErrorModel()
        for rate, threshold in DEFAULT_THRESHOLDS.items():
            assert model.prr(threshold, rate) > 0.95  # working region
            assert model.prr(threshold - 6.0, rate) < 0.05  # below the cliff

    def test_error_model_unknown_rate(self):
        with pytest.raises(KeyError):
            SigmoidErrorModel().prr(10.0, 11)

    def test_capture_gate(self):
        model = ReceptionModel(capture_threshold_db=4.0)
        rng = np.random.default_rng(0)
        ok, reason = model.decide(3.9, 6, rng)
        assert (ok, reason) == (False, "collision")
        ok, reason = model.decide(40.0, 6, rng)
        assert (ok, reason) == (True, "ok")

    def test_decide_consumes_one_draw_on_both_branches(self):
        # Determinism contract: the RNG stream must not depend on the
        # capture decision.
        model = ReceptionModel(capture_threshold_db=4.0)
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        model.decide(-10.0, 6, rng_a)   # below capture
        model.decide(40.0, 6, rng_b)    # above capture
        assert rng_a.random() == rng_b.random()

    def test_cos_delivery_operating_points(self):
        assert cos_delivery_prob_for(20.0) == 0.97
        assert cos_delivery_prob_for(10.0) == 0.95
        assert cos_delivery_prob_for(4.0) == 0.85
        assert cos_delivery_prob_for(-5.0) == 0.5


class TestScenarioSpec:
    def _spec(self, **overrides):
        kwargs = dict(
            name="t",
            nodes=(NodeSpec("a"), NodeSpec("b", 10.0, 0.0)),
            flows=(FlowSpec(src="a", dst="b", n_packets=3),),
        )
        kwargs.update(overrides)
        return ScenarioSpec(**kwargs)

    def test_json_round_trip(self):
        spec = self._spec(control="explicit", data_rate_mbps=24)
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_unknown_field_rejected(self):
        data = self._spec().to_dict()
        data["not_a_field"] = 1
        with pytest.raises(ValueError, match="unknown scenario fields"):
            ScenarioSpec.from_dict(data)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown nodes"):
            self._spec(flows=(FlowSpec(src="a", dst="ghost"),))
        with pytest.raises(ValueError, match="self-loop"):
            self._spec(flows=(FlowSpec(src="a", dst="a"),))
        with pytest.raises(ValueError, match="unique"):
            self._spec(nodes=(NodeSpec("a"), NodeSpec("a", 1.0, 0.0)))
        with pytest.raises(ValueError, match="control mode"):
            self._spec(control="telepathy")
        with pytest.raises(ValueError, match="802.11a"):
            self._spec(data_rate_mbps=11)

    def test_with_control(self):
        spec = self._spec(control="cos")
        other = spec.with_control("explicit")
        assert other.control == "explicit"
        assert other.nodes == spec.nodes

    def test_save_load(self, tmp_path):
        path = tmp_path / "spec.json"
        spec = self._spec()
        spec.save(str(path))
        assert ScenarioSpec.load(str(path)) == spec
