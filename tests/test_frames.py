"""Unit tests for MPDU framing."""

import pytest

from repro.phy.frames import Mpdu, build_mpdu, parse_mpdu


class TestMpdu:
    def test_roundtrip(self):
        psdu = build_mpdu(b"hello")
        mpdu = parse_mpdu(psdu)
        assert mpdu.fcs_ok
        assert mpdu.payload == b"hello"

    def test_adds_four_bytes(self):
        assert len(build_mpdu(b"abc")) == 7

    def test_corruption(self):
        psdu = bytearray(build_mpdu(b"hello"))
        psdu[2] ^= 0xFF
        assert not parse_mpdu(bytes(psdu)).fcs_ok

    def test_none_is_failure(self):
        mpdu = parse_mpdu(None)
        assert not mpdu.fcs_ok
        assert mpdu.payload == b""

    def test_short_frame_is_failure(self):
        assert not parse_mpdu(b"ab").fcs_ok

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            build_mpdu(b"")
