"""Property-based tests (hypothesis) for bit utilities and the interval codec."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cos.intervals import IntervalCodec
from repro.utils.bitops import bits_to_bytes, bits_to_int, bytes_to_bits, int_to_bits
from repro.utils.crc import append_fcs, check_fcs

bit_lists = st.lists(st.integers(0, 1), max_size=256)


class TestBitopsProperties:
    @given(st.binary(max_size=512))
    def test_bytes_bits_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    @given(st.integers(0, 2**16 - 1), st.booleans())
    def test_int_bits_roundtrip(self, value, lsb_first):
        bits = int_to_bits(value, 16, lsb_first=lsb_first)
        assert bits_to_int(bits, lsb_first=lsb_first) == value

    @given(st.integers(1, 16), st.integers(0, 2**16 - 1))
    def test_width_respected(self, width, value):
        value %= 1 << width
        assert int_to_bits(value, width).size == width


class TestCrcProperties:
    @given(st.binary(min_size=1, max_size=256))
    def test_fcs_roundtrip(self, payload):
        assert check_fcs(append_fcs(payload))

    @given(st.binary(min_size=1, max_size=128), st.integers(0, 7), st.data())
    def test_any_single_bitflip_detected(self, payload, bit, data):
        frame = bytearray(append_fcs(payload))
        idx = data.draw(st.integers(0, len(frame) - 1))
        frame[idx] ^= 1 << bit
        assert not check_fcs(bytes(frame))


class TestIntervalCodecProperties:
    @given(
        st.integers(1, 8),
        st.lists(st.integers(0, 1), min_size=0, max_size=96),
    )
    @settings(max_examples=60)
    def test_roundtrip_any_k(self, k, bits):
        codec = IntervalCodec(k=k)
        bits = np.array(bits[: (len(bits) // k) * k], dtype=np.uint8)
        positions = codec.bits_to_positions(bits)
        assert np.array_equal(codec.positions_to_bits(positions), bits)

    @given(st.lists(st.integers(0, 1), min_size=4, max_size=64))
    @settings(max_examples=60)
    def test_positions_strictly_increasing(self, bits):
        codec = IntervalCodec(k=4)
        usable = np.array(bits[: (len(bits) // 4) * 4], dtype=np.uint8)
        positions = codec.bits_to_positions(usable)
        assert all(b > a for a, b in zip(positions, positions[1:]))

    @given(st.lists(st.integers(0, 1), min_size=4, max_size=64))
    @settings(max_examples=60)
    def test_silence_count_accounting(self, bits):
        codec = IntervalCodec(k=4)
        usable = np.array(bits[: (len(bits) // 4) * 4], dtype=np.uint8)
        positions = codec.bits_to_positions(usable)
        assert len(positions) == codec.silences_for(usable.size)

    @given(st.integers(0, 96))
    def test_worst_case_bounds_expected(self, n_bits):
        codec = IntervalCodec(k=4)
        n_bits -= n_bits % 4
        assert codec.expected_positions(n_bits) <= codec.positions_needed(n_bits)
