"""Tests for the explicit-vs-CoS control overhead comparison."""

import pytest

from repro.mac.overhead import ControlScheme, run_overhead_comparison


class TestOverheadComparison:
    def test_cos_has_zero_control_airtime(self):
        result = run_overhead_comparison(ControlScheme.COS, seed=1)
        assert result.control_airtime_fraction == 0.0

    def test_explicit_pays_control_airtime(self):
        result = run_overhead_comparison(ControlScheme.EXPLICIT, seed=1)
        assert result.control_airtime_fraction > 0.02

    def test_cos_goodput_at_least_explicit(self):
        explicit = run_overhead_comparison(ControlScheme.EXPLICIT, seed=2)
        cos = run_overhead_comparison(ControlScheme.COS, seed=2)
        assert cos.goodput_mbps >= explicit.goodput_mbps

    def test_cos_delivery_prob_scales_deliveries(self):
        high = run_overhead_comparison(ControlScheme.COS, cos_delivery_prob=0.99, seed=3)
        low = run_overhead_comparison(ControlScheme.COS, cos_delivery_prob=0.5, seed=3)
        assert high.control_messages_delivered > low.control_messages_delivered
        assert low.mean_control_latency_us > high.mean_control_latency_us

    def test_explicit_delivers_messages(self):
        result = run_overhead_comparison(
            ControlScheme.EXPLICIT, n_stations=2, packets_per_station=10, seed=4
        )
        assert result.control_messages_delivered > 0
        assert result.mean_control_latency_us > 0

    def test_attempt_accounting(self):
        result = run_overhead_comparison(ControlScheme.COS, seed=5)
        assert result.control_messages_delivered <= result.control_attempts
