"""Unit tests for the tapped-delay-line multipath model."""

import numpy as np
import pytest

from repro.channel.multipath import (
    POSITION_PROFILES,
    TappedDelayLine,
    exponential_pdp,
    rayleigh_taps,
)
from repro.phy.params import CP_LEN, N_FFT


class TestPdp:
    def test_normalised(self):
        assert exponential_pdp(8, 2.0).sum() == pytest.approx(1.0)

    def test_monotone_decay(self):
        pdp = exponential_pdp(10, 3.0)
        assert np.all(np.diff(pdp) < 0)

    def test_single_tap(self):
        assert exponential_pdp(1, 1.0).tolist() == [1.0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            exponential_pdp(0, 1.0)
        with pytest.raises(ValueError):
            exponential_pdp(3, 0.0)


class TestTaps:
    def test_rayleigh_power_follows_pdp(self):
        pdp = exponential_pdp(4, 1.5)
        powers = np.zeros(4)
        for seed in range(500):
            taps = rayleigh_taps(pdp, np.random.default_rng(seed))
            powers += np.abs(taps) ** 2
        powers /= 500
        assert np.allclose(powers, pdp, rtol=0.2)

    def test_normalized_draw_unit_energy(self, rng):
        tdl = TappedDelayLine.from_profile(6, 2.0, rng)
        assert np.sum(np.abs(tdl.taps) ** 2) == pytest.approx(1.0)

    def test_reproducible(self):
        a = TappedDelayLine.for_position("A", 3)
        b = TappedDelayLine.for_position("A", 3)
        assert np.array_equal(a.taps, b.taps)

    def test_unknown_position(self):
        with pytest.raises(KeyError):
            TappedDelayLine.for_position("Z")

    def test_profiles_fit_cyclic_prefix(self):
        for profile in POSITION_PROFILES.values():
            assert profile["n_taps"] <= CP_LEN

    def test_severity_ordering(self):
        """Position A must be more frequency-selective than C on average."""
        def median_gap(name):
            gaps = []
            for seed in range(120):
                tdl = TappedDelayLine.for_position(name, seed)
                g = np.abs(tdl.frequency_response()) ** 2
                g = g[g > 0]
                gaps.append(10 * np.log10(g.max() / np.maximum(g.min(), 1e-12)))
            return np.median(gaps)

        assert median_gap("A") > median_gap("B") > median_gap("C")


class TestApply:
    def test_identity_channel(self, rng):
        wave = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        assert np.allclose(TappedDelayLine.identity().apply(wave), wave)

    def test_keeps_length(self, rng):
        tdl = TappedDelayLine.from_profile(5, 1.0, rng)
        wave = rng.standard_normal(500) + 0j
        assert tdl.apply(wave).size == 500

    def test_matches_frequency_response_on_cp_ofdm(self, rng):
        """After CP removal, the channel is a per-bin multiplication."""
        from repro.phy.ofdm import grid_to_time, map_to_grid, time_to_grid

        tdl = TappedDelayLine.from_profile(6, 1.5, rng)
        data = rng.standard_normal((2, 48)) + 1j * rng.standard_normal((2, 48))
        grid = map_to_grid(data)
        received = tdl.apply(grid_to_time(grid))
        # Drop the first symbol (its CP absorbed the startup transient is
        # fine; conv is causal so symbol 1 onward is exactly circular).
        rx_grid = time_to_grid(received)
        h = tdl.frequency_response()
        used = grid[1] != 0
        assert np.allclose(rx_grid[1, used], grid[1, used] * h[used], atol=1e-9)

    def test_delay_spread(self):
        flat = TappedDelayLine.identity()
        assert flat.delay_spread_s == 0.0
        spread = TappedDelayLine(taps=np.array([1.0, 0.0, 1.0], dtype=complex))
        assert spread.delay_spread_s == pytest.approx(50e-9)
