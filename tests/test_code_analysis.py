"""Tests for the analytical code properties."""

from fractions import Fraction

import numpy as np
import pytest

from repro.phy.code_analysis import erasure_budget, free_distance, union_bound_ber


class TestFreeDistance:
    def test_rate_half_is_ten(self):
        """The K=7 (133,171) code's free distance is the classic 10."""
        assert free_distance(Fraction(1, 2)) == 10

    def test_rate_two_thirds_is_six(self):
        assert free_distance(Fraction(2, 3)) == 6

    def test_rate_three_quarters_is_five(self):
        assert free_distance(Fraction(3, 4)) == 5

    def test_ordering(self):
        """Less puncturing, more distance — the Fig. 9 ceiling ordering."""
        assert (
            free_distance(Fraction(1, 2))
            > free_distance(Fraction(2, 3))
            > free_distance(Fraction(3, 4))
        )

    def test_erasure_budget(self):
        assert erasure_budget(Fraction(1, 2)) == 9
        assert erasure_budget(Fraction(3, 4)) == 4


class TestUnionBound:
    def test_decreases_with_snr(self):
        bers = [union_bound_ber(snr) for snr in (2.0, 4.0, 6.0, 8.0)]
        assert all(b < a for a, b in zip(bers, bers[1:]))

    def test_small_at_high_snr(self):
        assert union_bound_ber(10.0) < 1e-6

    def test_capped_at_half(self):
        assert union_bound_ber(-20.0) <= 0.5

    def test_only_mother_rate(self):
        with pytest.raises(ValueError):
            union_bound_ber(5.0, Fraction(3, 4))

    def test_empirical_decoder_beats_hard_bound_at_moderate_snr(self, rng):
        """Our soft decoder must outperform the hard-decision bound."""
        from repro.phy.convcode import conv_encode
        from repro.phy.viterbi import ViterbiDecoder

        snr_db = 4.0
        ebn0 = 10 ** (snr_db / 10)
        sigma = np.sqrt(1.0 / (2 * 0.5 * ebn0))  # rate-1/2 BPSK
        errors = 0
        total = 0
        for seed in range(12):
            local = np.random.default_rng(seed)
            info = local.integers(0, 2, 300, dtype=np.uint8)
            coded = conv_encode(np.concatenate([info, np.zeros(6, dtype=np.uint8)]))
            tx = 1.0 - 2.0 * coded.astype(float)
            llrs = 2.0 * (tx + sigma * local.standard_normal(tx.size)) / sigma**2
            decoded = ViterbiDecoder().decode(llrs)
            errors += int(np.count_nonzero(decoded[:300] != info))
            total += 300
        empirical = errors / total
        assert empirical <= union_bound_ber(snr_db) * 1.5
