"""Smoke + shape tests for the per-figure experiment harnesses.

Each test runs a figure with a tiny budget and asserts the qualitative
claim the paper's figure makes — the same checks EXPERIMENTS.md reports
at full scale.
"""

import numpy as np
import pytest

from repro.experiments import ablations, fig2, fig3, fig5, fig6, fig7, fig9, fig10
from repro.experiments.common import ExperimentConfig, print_table, scaled


class TestCommon:
    def test_scaled_quick_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert scaled(3, 100) == 3

    def test_scaled_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert scaled(3, 100) == 100

    def test_print_table_runs(self, capsys):
        print_table(["a", "b"], [(1, 2.5), (3, 4.0)], title="t")
        out = capsys.readouterr().out
        assert "t" in out and "2.5" in out


class TestFig2:
    def test_gap_always_positive(self):
        result = fig2.run(snr_grid=np.array([6.0, 12.0, 15.0, 21.0]), realizations=2)
        assert result.gap_always_positive()

    def test_staircase_structure(self):
        result = fig2.run(snr_grid=np.array([12.5, 14.0, 16.0]), realizations=1)
        # All three fall in the 24 Mbps band -> same minimum required SNR.
        assert {p.min_required_snr_db for p in result.points} == {12.0}
        assert all(p.rate_mbps == 24 for p in result.points)

    def test_actual_above_measured(self):
        result = fig2.run(snr_grid=np.array([10.0, 20.0]), realizations=2)
        for p in result.points:
            assert p.actual_snr_db > p.measured_snr_db


class TestFig3:
    def test_ber_decreases_and_redundancy_grows(self):
        result = fig3.run(
            snr_grid=np.array([12.0, 14.5, 17.0]), n_packets=4, realizations=1
        )
        bers = [p.actual_ber for p in result.points]
        assert bers[0] > bers[-1]
        assert result.redundant_increases_with_snr()
        assert result.reference_ber > 0.01  # meaningful error rate at 12 dB


class TestFig5:
    def test_position_ordering(self):
        result = fig5.run(n_packets=4)
        assert set(result.evms) == {"A", "B", "C"}
        # Position A (most selective) has the largest EVM spread.
        assert result.spread_percent("A") > result.spread_percent("C")

    def test_evm_shapes(self):
        result = fig5.run(n_packets=3, positions=["A"])
        assert result.evms["A"].shape == (48,)
        assert np.all(result.evms["A"] >= 0)


class TestFig6:
    def test_period_is_subcarrier_count(self):
        result = fig6.run(n_packets=12)
        assert 44 <= result.dominant_period() <= 52

    def test_errors_concentrated_on_weak_subcarriers(self):
        result = fig6.run(n_packets=12)
        # The 8 weakest of 48 subcarriers carry a disproportionate share.
        assert result.weak_subcarrier_error_share(8) > 8 / 48

    def test_ser_shape(self):
        result = fig6.run(n_packets=6)
        assert result.subcarrier_ser.shape == (48,)
        assert result.position_error_freq.size <= 1000


class TestFig7:
    def test_nabla_small_and_bounded(self):
        result = fig7.run(n_trials=3)
        for tau in sorted(result.nabla_samples):
            med = result.median_nabla(tau)
            assert 0.0 <= med < 0.25, f"∇EVM at {tau} ms too large: {med}"

    def test_snapshots_recorded(self):
        result = fig7.run(n_trials=2)
        assert 0.0 in result.evm_snapshots
        assert result.evm_snapshots[0.0].shape == (48,)


@pytest.mark.slow
class TestFig9:
    def test_capacity_shape(self):
        result = fig9.run(n_packets=10, points_per_band=1, bands_mbps=(12, 54))
        # QPSK-1/2 sustains far more silences than 64QAM-3/4.
        assert result.ceiling(12) > result.ceiling(54)
        for p in result.points:
            assert p.prr >= 0.9

    def test_measure_prr_counts(self):
        prr, silences, airtime = fig9.measure_prr(
            ExperimentConfig(), snr_db=8.0, groups_per_packet=4, n_packets=4
        )
        assert 0.0 <= prr <= 1.0
        assert silences >= 4  # start marker + 4 groups when all embedded
        assert airtime > 0


class TestFig10:
    def test_snapshot_contrast(self):
        snap = fig10.run_snapshot()
        assert snap.contrast_db() > 6.0
        assert len(snap.silent_data_subcarriers) >= 1

    def test_threshold_tradeoff(self):
        sweep = fig10.run_threshold_sweep(n_packets=4)
        # FN decreases with threshold, FP increases.
        assert sweep.false_negative[0] > sweep.false_negative[-1]
        assert sweep.false_positive[0] < sweep.false_positive[-1]

    def test_adaptive_accuracy_working_region(self):
        acc = fig10.run_accuracy_vs_snr(
            snrs_db=np.array([14.0, 18.0]), n_packets=4
        )
        assert np.all(acc.false_negative <= 0.02)
        assert np.all(acc.false_positive <= 0.1)

    def test_interference_raises_fn(self):
        clean = fig10.run_accuracy_vs_snr(snrs_db=np.array([14.0]), n_packets=4)
        noisy = fig10.run_interference(snrs_db=np.array([14.0]), n_packets=4)
        assert noisy.false_negative[0] > clean.false_negative[0]


@pytest.mark.slow
class TestAblations:
    def test_placement(self):
        result = ablations.run_placement(n_packets=10, groups_grid=[20, 60])
        assert result.weak_dominates()

    def test_evd(self):
        result = ablations.run_evd(n_packets=10, groups_grid=[20, 60])
        assert result.evd_dominates()
