"""Smoke tests: every example script must run to completion.

Examples are user-facing documentation; a broken one is a broken promise.
Each test executes the script's ``main()`` in-process (cheap parameters
are already their defaults) and checks for its key output line.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "data PRR" in out
        assert "0 µs" in out

    def test_free_ack_piggyback(self, capsys):
        _load("free_ack_piggyback").main()
        out = capsys.readouterr().out
        assert "airtime saved" in out

    def test_load_balancing(self, capsys):
        _load("load_balancing").main()
        out = capsys.readouterr().out
        assert "client ends on" in out

    def test_interference_study(self, capsys):
        _load("interference_study").main()
        out = capsys.readouterr().out
        assert "pulse duty" in out

    def test_network_overhead(self, capsys):
        _load("network_overhead").main()
        out = capsys.readouterr().out
        assert "goodput" in out

    def test_trace_replay(self, capsys):
        _load("trace_replay").main()
        out = capsys.readouterr().out
        assert "same fading trajectory" in out
