"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.channel import IndoorChannel
from repro.phy import RATE_TABLE, build_mpdu


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def payload():
    return bytes(range(200))


@pytest.fixture
def psdu(payload):
    return build_mpdu(payload)


@pytest.fixture
def rate24():
    return RATE_TABLE[24]


@pytest.fixture
def clean_channel():
    """A mild, high-SNR channel for tests that need near-certain decoding."""
    return IndoorChannel.position("C", snr_db=28.0, seed=5)


@pytest.fixture
def selective_channel():
    """A representative frequency-selective channel."""
    return IndoorChannel.position("A", snr_db=15.0, seed=27)
