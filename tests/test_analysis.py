"""Unit tests for analysis metrics and statistics."""

import numpy as np
import pytest

from repro.analysis import (
    binomial_confidence,
    bit_error_rate,
    empirical_cdf,
    packet_reception_rate,
    symbol_error_positions,
    symbol_error_rate_per_subcarrier,
    wilson_interval,
)


class TestBer:
    def test_zero(self):
        bits = np.array([0, 1, 1, 0], dtype=np.uint8)
        assert bit_error_rate(bits, bits) == 0.0

    def test_half(self):
        assert bit_error_rate(np.array([0, 0]), np.array([0, 1])) == 0.5

    def test_empty(self):
        assert bit_error_rate(np.zeros(0), np.zeros(0)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bit_error_rate(np.zeros(3), np.zeros(4))


class TestSymbolErrors:
    def test_positions(self):
        sent = np.ones((2, 48), dtype=complex)
        got = sent.copy()
        got[1, 5] = -1.0
        errors = symbol_error_positions(sent, got)
        assert errors.sum() == 1 and errors[1, 5]

    def test_exclude_mask(self):
        sent = np.ones((1, 48), dtype=complex)
        got = sent.copy()
        got[0, 3] = 0.0
        mask = np.zeros((1, 48), dtype=bool)
        mask[0, 3] = True
        assert symbol_error_positions(sent, got, exclude_mask=mask).sum() == 0

    def test_ser_per_subcarrier(self):
        g1 = np.zeros((4, 48), dtype=bool)
        g1[:, 7] = True
        g2 = np.zeros((4, 48), dtype=bool)
        ser = symbol_error_rate_per_subcarrier([g1, g2])
        assert ser[7] == 0.5
        assert ser[0] == 0.0

    def test_ser_requires_grids(self):
        with pytest.raises(ValueError):
            symbol_error_rate_per_subcarrier([])


class TestPrr:
    def test_values(self):
        assert packet_reception_rate([True, True, False, True]) == 0.75
        assert packet_reception_rate([]) == 0.0


class TestStatistics:
    def test_cdf_monotone(self, rng):
        values, probs = empirical_cdf(rng.normal(size=100))
        assert np.all(np.diff(values) >= 0)
        assert probs[0] == pytest.approx(0.01)
        assert probs[-1] == 1.0

    def test_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_binomial_confidence_contains_p(self):
        low, high = binomial_confidence(93, 100)
        assert low < 0.93 < high
        assert 0.85 < low and high < 0.99

    def test_binomial_edge_cases(self):
        low, high = binomial_confidence(0, 10)
        assert low == 0.0 and high < 0.4
        low, high = binomial_confidence(10, 10)
        assert high == 1.0 and low > 0.6

    def test_binomial_invalid(self):
        with pytest.raises(ValueError):
            binomial_confidence(5, 0)
        with pytest.raises(ValueError):
            binomial_confidence(11, 10)

    def test_wilson_contains_p(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high

    def test_wilson_bounded(self):
        low, high = wilson_interval(0, 5)
        assert low == 0.0
        low, high = wilson_interval(5, 5)
        assert high == 1.0
