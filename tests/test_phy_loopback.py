"""Integration tests: full transmitter -> channel -> receiver loop."""

import numpy as np
import pytest

from repro.channel import IndoorChannel, TappedDelayLine, add_awgn
from repro.phy import RATE_TABLE, Receiver, Transmitter, build_mpdu


class TestNoiselessLoopback:
    @pytest.mark.parametrize("mbps", sorted(RATE_TABLE))
    def test_all_rates(self, mbps, payload, psdu):
        frame = Transmitter().transmit(psdu, RATE_TABLE[mbps])
        result = Receiver().receive(frame.waveform)
        assert result.ok
        assert result.mpdu.payload == payload
        assert result.signal.rate.mbps == mbps
        assert result.signal.length == len(psdu)

    def test_various_lengths(self):
        for n in (1, 7, 64, 333, 1500):
            psdu = build_mpdu(bytes(n))
            frame = Transmitter().transmit(psdu, RATE_TABLE[54])
            assert Receiver().receive(frame.waveform).ok

    def test_silence_mask_decodes_with_erasures(self, payload, psdu, rng):
        rate = RATE_TABLE[24]
        tx = Transmitter()
        n_sym = tx.n_data_symbols_for(len(psdu), rate)
        mask = np.zeros((n_sym, 48), dtype=bool)
        mask[::3, 10] = True  # silence a subcarrier in every third symbol
        frame = tx.transmit(psdu, rate, silence_mask=mask)
        result = Receiver().receive(frame.waveform, erasure_mask=mask)
        assert result.ok and result.mpdu.payload == payload

    def test_silenced_symbols_have_zero_power(self, psdu):
        rate = RATE_TABLE[24]
        tx = Transmitter()
        n_sym = tx.n_data_symbols_for(len(psdu), rate)
        mask = np.zeros((n_sym, 48), dtype=bool)
        mask[0, 5] = True
        frame = tx.transmit(psdu, rate, silence_mask=mask)
        obs = Receiver().observe(frame.waveform)
        assert abs(obs.raw_data_grid[0, 5]) < 1e-9
        assert abs(obs.raw_data_grid[0, 6]) > 0.1


class TestNoisyLoopback:
    def test_awgn_high_snr(self, payload, psdu, rng):
        frame = Transmitter().transmit(psdu, RATE_TABLE[24])
        noisy = add_awgn(frame.waveform, 10 ** (-20 / 10), rng)
        result = Receiver().receive(noisy)
        assert result.ok and result.mpdu.payload == payload

    def test_low_snr_fails_gracefully(self, psdu, rng):
        frame = Transmitter().transmit(psdu, RATE_TABLE[54])
        noisy = add_awgn(frame.waveform, 10 ** (5 / 10), rng)  # SNR -5 dB
        result = Receiver().receive(noisy)
        assert not result.ok  # no crash, clean failure

    def test_multipath_only(self, payload, psdu, rng):
        tdl = TappedDelayLine.for_position("A", rng)
        frame = Transmitter().transmit(psdu, RATE_TABLE[36])
        result = Receiver().receive(tdl.apply(frame.waveform))
        assert result.ok and result.mpdu.payload == payload

    @pytest.mark.parametrize("position", ["A", "B", "C"])
    def test_indoor_channel_good_snr(self, position, payload, psdu):
        channel = IndoorChannel.position(position, snr_db=25.0, seed=3)
        frame = Transmitter().transmit(psdu, RATE_TABLE[24])
        result = Receiver().receive(channel.transmit(frame.waveform))
        assert result.ok and result.mpdu.payload == payload

    def test_rate_adaptation_band_edges_decode(self, payload, psdu):
        """Every rate decodes at its own minimum required SNR."""
        from repro.rateadapt import DEFAULT_THRESHOLDS

        for mbps, threshold in DEFAULT_THRESHOLDS.items():
            channel = IndoorChannel.position("A", snr_db=threshold + 0.5, seed=11)
            frame = Transmitter().transmit(psdu, RATE_TABLE[mbps])
            result = Receiver().receive(channel.transmit(frame.waveform))
            assert result.ok, f"{mbps} Mbps failed at {threshold + 0.5} dB"


class TestReceiverDiagnostics:
    def test_observation_contents(self, psdu, clean_channel):
        frame = Transmitter().transmit(psdu, RATE_TABLE[24])
        obs = Receiver().observe(clean_channel.transmit(frame.waveform))
        assert obs.signal is not None
        assert obs.raw_data_grid.shape == (frame.n_data_symbols, 48)
        assert obs.eq_data_grid.shape == (frame.n_data_symbols, 48)
        assert obs.noise_var > 0
        assert obs.h_data.shape == (48,)

    def test_pre_viterbi_bits_exposed(self, psdu, clean_channel):
        frame = Transmitter().transmit(psdu, RATE_TABLE[24])
        result = Receiver().receive(clean_channel.transmit(frame.waveform))
        assert result.pre_viterbi_bits is not None
        assert result.pre_viterbi_bits.size == frame.coded_bits.size
        # At 28 dB on a mild channel, decoder-input BER is near zero.
        ber = np.mean(result.pre_viterbi_bits != frame.coded_bits)
        assert ber < 0.01

    def test_too_short_waveform(self):
        result = Receiver().receive(np.zeros(100, dtype=complex))
        assert not result.ok

    def test_unknown_timing_sync(self, payload, psdu, rng):
        frame = Transmitter().transmit(psdu, RATE_TABLE[12])
        offset_wave = np.concatenate(
            [np.zeros(57, dtype=complex), frame.waveform]
        )
        noisy = add_awgn(offset_wave, 1e-4, rng)
        result = Receiver(known_timing=False).receive(noisy)
        assert result.ok and result.mpdu.payload == payload

    def test_erasure_mask_shape_validated(self, psdu, clean_channel):
        frame = Transmitter().transmit(psdu, RATE_TABLE[24])
        obs = Receiver().observe(clean_channel.transmit(frame.waveform))
        with pytest.raises(ValueError):
            Receiver().decode(obs, erasure_mask=np.zeros((1, 48), dtype=bool))
