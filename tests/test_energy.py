"""Unit tests for the silence-symbol energy detector."""

import numpy as np
import pytest

from repro.cos.energy import EnergyDetector


def _grid_with_silences(rng, n_sym=20, noise_var=0.01, gain=1.0, silent=None):
    """Synthetic raw grid: unit-power symbols + noise, silences = noise only."""
    grid = gain * np.exp(2j * np.pi * rng.random((n_sym, 48)))
    noise = np.sqrt(noise_var / 2) * (
        rng.standard_normal((n_sym, 48)) + 1j * rng.standard_normal((n_sym, 48))
    )
    truth = np.zeros((n_sym, 48), dtype=bool)
    if silent:
        for slot, sub in silent:
            truth[slot, sub] = True
            grid[slot, sub] = 0.0
    return grid + noise, truth


class TestThreshold:
    def test_margin_applied(self):
        det = EnergyDetector(margin_db=10.0)
        assert det.threshold_for(0.01) == pytest.approx(0.1)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            EnergyDetector().threshold_for(-0.1)


class TestDetection:
    def test_detects_planted_silences(self, rng):
        silent = [(0, 10), (3, 12), (7, 15)]
        grid, truth = _grid_with_silences(rng, silent=silent)
        report = EnergyDetector().detect(grid, range(9, 17), noise_var=0.01)
        assert np.array_equal(report.mask, truth)

    def test_only_control_subcarriers_flagged(self, rng):
        grid, _ = _grid_with_silences(rng, silent=[(0, 5)])  # not in control set
        report = EnergyDetector().detect(grid, [10, 11], noise_var=0.01)
        assert not report.mask[:, 5].any()

    def test_explicit_threshold(self, rng):
        grid, truth = _grid_with_silences(rng, silent=[(1, 10)])
        report = EnergyDetector().detect(
            grid, [10], noise_var=0.01, threshold=0.05
        )
        assert report.threshold == pytest.approx(0.05)
        assert np.array_equal(report.mask, truth)

    def test_adaptive_raises_threshold_on_strong_subcarriers(self, rng):
        gains = np.full(48, 25.0)  # strong: |H|^2 = 25
        grid, truth = _grid_with_silences(rng, gain=5.0, silent=[(0, 10)])
        det = EnergyDetector(margin_db=7.0, adaptive=True)
        report = det.detect(
            grid, [10], noise_var=0.01, h_gains=gains, min_symbol_energy=1.0
        )
        base = det.threshold_for(0.01)
        assert report.threshold > base
        assert np.array_equal(report.mask, truth)

    def test_adaptive_never_exceeds_half_signal_floor(self):
        det = EnergyDetector(margin_db=0.0, adaptive=True)
        thresholds = det._per_subcarrier_thresholds(
            noise_var=0.01, gains=np.full(48, 0.04), min_symbol_energy=1.0
        )
        assert np.all(thresholds <= 0.5 * 0.04 + 1e-12)

    def test_wrong_width_rejected(self, rng):
        with pytest.raises(ValueError):
            EnergyDetector().detect(np.zeros((2, 47)), [1], 0.01)

    def test_bad_subcarrier_index_rejected(self, rng):
        with pytest.raises(ValueError):
            EnergyDetector().detect(np.zeros((2, 48)), [48], 0.01)

    def test_energies_shape(self, rng):
        grid, _ = _grid_with_silences(rng, n_sym=5)
        report = EnergyDetector().detect(grid, [1, 2, 3], noise_var=0.01)
        assert report.energies.shape == (5, 3)


class TestStatisticalBehaviour:
    def test_false_negative_rate_matches_theory(self, rng):
        """P(noise energy > margin * sigma^2) = exp(-margin_linear)."""
        noise_var = 0.02
        det = EnergyDetector(margin_db=7.0, adaptive=False)
        grid = np.sqrt(noise_var / 2) * (
            rng.standard_normal((4000, 48)) + 1j * rng.standard_normal((4000, 48))
        )
        truth = np.ones((4000, 48), dtype=bool)  # everything is silence
        report = det.detect(grid, range(48), noise_var=noise_var)
        _, fn = EnergyDetector.confusion(report.mask, truth, range(48))
        assert fn == pytest.approx(np.exp(-(10 ** 0.7)), rel=0.2)

    def test_confusion_perfect(self, rng):
        mask = np.zeros((3, 48), dtype=bool)
        mask[0, 4] = True
        fp, fn = EnergyDetector.confusion(mask, mask, [4, 5])
        assert fp == 0.0 and fn == 0.0

    def test_confusion_counts(self):
        truth = np.zeros((1, 48), dtype=bool)
        truth[0, 1] = True
        detected = np.zeros((1, 48), dtype=bool)
        detected[0, 2] = True
        fp, fn = EnergyDetector.confusion(detected, truth, [1, 2, 3])
        assert fn == 1.0  # the one silence was missed
        assert fp == pytest.approx(0.5)  # one of two active cells flagged

    def test_confusion_shape_mismatch(self):
        with pytest.raises(ValueError):
            EnergyDetector.confusion(
                np.zeros((1, 48), dtype=bool), np.zeros((2, 48), dtype=bool), [1]
            )
