"""Unit tests for adaptive control-message rate selection."""

import pytest

from repro.cos.intervals import IntervalCodec
from repro.cos.rate_control import (
    DEFAULT_RM_TABLE,
    ControlRateController,
    ControlRateTable,
)


class TestControlRateTable:
    def test_paper_anchor_64qam34(self):
        """Rm at the 54 Mbps band edge is the paper's minimum, 33 000/s."""
        table = ControlRateTable()
        assert table.rm_for(22.4) == pytest.approx(33_000.0)

    def test_paper_anchor_qpsk12_max(self):
        """The QPSK-1/2 band tops out at the paper's maximum, 148 000/s."""
        table = ControlRateTable()
        assert table.rm_for(9.49) == pytest.approx(148_000.0, rel=0.02)

    def test_interpolation_within_band(self):
        table = ControlRateTable()
        low = table.rm_for(12.0)
        mid = table.rm_for(14.5)
        high = table.rm_for(17.2)
        assert low < mid < high

    def test_lowest_rm(self):
        assert ControlRateTable().lowest_rm() == min(
            min(p) for p in DEFAULT_RM_TABLE.values()
        )

    def test_with_entry_recalibration(self):
        table = ControlRateTable().with_entry(24, 1000.0, 2000.0)
        assert table.rm_for(12.0) == pytest.approx(1000.0)
        assert ControlRateTable().rm_for(12.0) != pytest.approx(1000.0)

    def test_negative_rm_rejected(self):
        with pytest.raises(ValueError):
            ControlRateTable(rm_by_rate={24: (-1.0, 10.0)})

    def test_capacity_132kbps_at_33k(self):
        """The paper: 33 000 silences/s with k = 4 gives 132 kbps."""
        controller = ControlRateController()
        assert controller.control_capacity_bps(22.4) == pytest.approx(132_000.0)


class TestAllocation:
    def test_allocation_fields(self):
        controller = ControlRateController()
        alloc = controller.allocation(15.0, n_data_symbols=60)
        assert alloc.n_control_subcarriers >= 1
        assert alloc.max_control_bits > 0
        assert alloc.max_control_bits % 4 == 0
        assert alloc.target_silences > 0

    def test_higher_rm_means_more_bits(self):
        controller = ControlRateController()
        low = controller.allocation(22.5, 60)  # 64QAM band: small Rm
        high = controller.allocation(9.0, 60)  # QPSK band: large Rm
        assert high.max_control_bits > low.max_control_bits

    def test_subcarrier_cap(self):
        controller = ControlRateController(max_subcarriers=4)
        alloc = controller.allocation(9.0, 10)  # tiny packet, big budget
        assert alloc.n_control_subcarriers <= 4

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ControlRateController(safety=0.0)
        with pytest.raises(ValueError):
            ControlRateController(max_subcarriers=0)
        with pytest.raises(ValueError):
            ControlRateController().allocation(10.0, 0)

    def test_airtime(self):
        # 60 data symbols: 16 + 4 + 240 us.
        assert ControlRateController.packet_airtime_s(60) == pytest.approx(260e-6)


class TestFallback:
    def test_failure_triggers_lowest_rate(self):
        controller = ControlRateController()
        normal = controller.allocation(15.0, 60)
        controller.on_data_result(False)
        assert controller.in_fallback
        fallback = controller.allocation(15.0, 60)
        assert fallback.target_silences <= normal.target_silences

    def test_success_restores(self):
        controller = ControlRateController()
        controller.on_data_result(False)
        controller.on_data_result(True)
        assert not controller.in_fallback

    def test_fallback_matches_lowest_table_rate(self):
        controller = ControlRateController(safety=1.0)
        controller.on_data_result(False)
        alloc = controller.allocation(15.0, 60)
        expected = int(
            controller.table.lowest_rm() * ControlRateController.packet_airtime_s(60)
        )
        assert alloc.target_silences == expected
