"""Unit tests for the convolutional encoder and puncturing."""

from fractions import Fraction

import numpy as np
import pytest

from repro.phy.convcode import (
    PUNCTURE_PATTERNS,
    conv_encode,
    depuncture,
    n_coded_bits,
    puncture,
)


class TestEncoder:
    def test_rate_half_length(self):
        assert conv_encode(np.zeros(10, dtype=np.uint8)).size == 20

    def test_all_zero_input(self):
        assert not conv_encode(np.zeros(32, dtype=np.uint8)).any()

    def test_impulse_response(self):
        # A single 1 produces the generator taps on the A and B streams.
        out = conv_encode(np.array([1, 0, 0, 0, 0, 0, 0], dtype=np.uint8))
        a = out[0::2]
        b = out[1::2]
        # g0 = 133o -> taps at delays 0,2,3,5,6; g1 = 171o -> 0,1,2,3,6.
        assert a.tolist() == [1, 0, 1, 1, 0, 1, 1]
        assert b.tolist() == [1, 1, 1, 1, 0, 0, 1]

    def test_linearity(self, rng):
        x = rng.integers(0, 2, 64, dtype=np.uint8)
        y = rng.integers(0, 2, 64, dtype=np.uint8)
        assert np.array_equal(
            conv_encode(x) ^ conv_encode(y), conv_encode(x ^ y)
        )

    def test_known_standard_vector(self):
        # First coded bits of an 802.11a SIGNAL field for 36 Mbps len 100:
        # independent sanity: encoding [1,0,1,1] gives A/B per hand calc.
        out = conv_encode(np.array([1, 0, 1, 1], dtype=np.uint8))
        # step1: window 1 -> A=1 B=1; step2: window 01 -> A=0^0^...:
        assert out.tolist()[:2] == [1, 1]


class TestPuncturing:
    def test_rate_half_identity(self, rng):
        coded = rng.integers(0, 2, 24, dtype=np.uint8)
        assert np.array_equal(puncture(coded, Fraction(1, 2)), coded)

    def test_rate_two_thirds_length(self):
        coded = np.arange(24) % 2
        assert puncture(coded, Fraction(2, 3)).size == 18

    def test_rate_three_quarters_length(self):
        coded = np.arange(36) % 2
        assert puncture(coded, Fraction(3, 4)).size == 24

    def test_three_quarters_pattern(self):
        # Keeps A1 B1 A2, drops B2 A3, keeps B3 per period of 3 pairs.
        coded = np.arange(6)  # A1 B1 A2 B2 A3 B3
        assert puncture(coded, Fraction(3, 4)).tolist() == [0, 1, 2, 5]

    def test_two_thirds_pattern(self):
        coded = np.arange(4)  # A1 B1 A2 B2
        assert puncture(coded, Fraction(2, 3)).tolist() == [0, 1, 2]

    def test_odd_stream_rejected(self):
        with pytest.raises(ValueError):
            puncture(np.zeros(5), Fraction(1, 2))

    def test_unknown_rate_rejected(self):
        with pytest.raises(ValueError):
            puncture(np.zeros(6), Fraction(5, 6))


class TestDepuncture:
    @pytest.mark.parametrize("rate", list(PUNCTURE_PATTERNS))
    def test_roundtrip_positions(self, rate, rng):
        coded = rng.integers(0, 2, 48, dtype=np.uint8).astype(float)
        sent = puncture(coded, rate)
        restored = depuncture(sent, rate, fill=-1.0)
        assert restored.size == coded.size
        mask = restored != -1.0
        # Every kept position carries its original value, in place.
        assert np.array_equal(restored[mask], coded[mask])
        # The number of filled positions matches the puncture pattern.
        assert int(mask.sum()) == sent.size

    def test_fill_value_is_erasure(self):
        sent = puncture(np.ones(12, dtype=np.uint8), Fraction(3, 4))
        restored = depuncture(sent, Fraction(3, 4))
        assert restored.size == 12
        assert np.count_nonzero(restored == 0.0) == 4  # punctured as erasures

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            depuncture(np.zeros(5), Fraction(3, 4))


class TestNCodedBits:
    def test_values(self):
        assert n_coded_bits(12, Fraction(1, 2)) == 24
        assert n_coded_bits(12, Fraction(2, 3)) == 18
        assert n_coded_bits(12, Fraction(3, 4)) == 16

    def test_fractional_rejected(self):
        with pytest.raises(ValueError):
            n_coded_bits(13, Fraction(2, 3))
