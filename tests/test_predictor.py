"""Unit tests for the EVM predictor."""

import numpy as np
import pytest

from repro.cos.predictor import EvmPredictor


@pytest.fixture
def evms(rng):
    return 0.1 + 0.05 * rng.random(48)


class TestEvmPredictor:
    def test_first_update_is_identity(self, evms):
        predictor = EvmPredictor()
        assert np.allclose(predictor.update(evms), evms)

    def test_smoothing_reduces_noise(self, rng):
        """EWMA prediction tracks the mean closer than raw samples do."""
        truth = 0.2 * np.ones(48)
        predictor = EvmPredictor(alpha=0.3)
        raw_err = []
        smooth_err = []
        for _ in range(50):
            sample = truth + 0.05 * rng.standard_normal(48)
            smoothed = predictor.update(sample)
            raw_err.append(np.abs(sample - truth).mean())
            smooth_err.append(np.abs(smoothed - truth).mean())
        assert np.mean(smooth_err[10:]) < np.mean(raw_err[10:])

    def test_tracks_drift(self):
        predictor = EvmPredictor(alpha=0.5)
        for level in np.linspace(0.1, 0.3, 20):
            predicted = predictor.update(np.full(48, level))
        assert predicted.mean() == pytest.approx(0.3, abs=0.02)

    def test_staleness_resets(self, evms):
        predictor = EvmPredictor(max_age_s=0.05)
        predictor.update(evms)
        predictor.advance(0.1)  # beyond max age
        assert not predictor.has_history
        assert predictor.predict() is None

    def test_fresh_history_survives(self, evms):
        predictor = EvmPredictor(max_age_s=0.05)
        predictor.update(evms)
        predictor.advance(0.01)
        assert predictor.has_history

    def test_update_resets_age(self, evms):
        predictor = EvmPredictor(max_age_s=0.05)
        predictor.update(evms)
        for _ in range(10):
            predictor.advance(0.03)
            predictor.update(evms)
        assert predictor.has_history

    def test_predict_returns_copy(self, evms):
        predictor = EvmPredictor()
        predictor.update(evms)
        out = predictor.predict()
        out[:] = 99.0
        assert predictor.predict()[0] != 99.0

    def test_invalid_args(self, evms):
        with pytest.raises(ValueError):
            EvmPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            EvmPredictor(max_age_s=-1.0)
        with pytest.raises(ValueError):
            EvmPredictor().update(np.zeros(47))
        with pytest.raises(ValueError):
            EvmPredictor().advance(-0.1)
