"""End-to-end scenario tests: the full stack under realistic conditions."""

import numpy as np
import pytest

from repro.channel import IndoorChannel, PulseInterferer
from repro.cos import AckMessage, CosLink, decode_message, encode_message
from repro.rateadapt import RateAdapter


class TestMultiPacketSession:
    def test_sustained_session_all_bands(self):
        """A session in each rate band keeps PRR high and delivers control."""
        for snr, expected_rate in [(8.0, 12), (13.0, 24), (21.0, 48)]:
            channel = IndoorChannel.position("B", snr_db=snr, seed=9)
            link = CosLink(channel=channel)
            stats = link.run(n_packets=8, payload=b"d" * 300)
            assert stats.prr >= 0.85, f"PRR collapsed at {snr} dB"
            assert stats.outcomes[0].rate_mbps == expected_rate

    def test_typed_message_end_to_end(self):
        channel = IndoorChannel.position("A", snr_db=15.0, seed=5)
        link = CosLink(channel=channel)
        link.exchange(b"w" * 300, [])  # warm up feedback
        message = AckMessage(seq=1234)
        outcome = link.exchange(b"w" * 300, encode_message(message))
        assert outcome.data_ok
        assert outcome.control_ok
        assert decode_message(outcome.control_received) == message

    def test_mobility_session(self):
        """Walking-speed evolution across packets does not break the loop."""
        channel = IndoorChannel.position("A", snr_db=19.0, seed=2)
        link = CosLink(channel=channel, inter_packet_gap_s=5e-3)
        stats = link.run(n_packets=15, payload=b"m" * 200)
        assert stats.prr >= 0.8
        assert stats.message_accuracy >= 0.5


class TestAdverseConditions:
    def test_interference_degrades_control_not_crash(self):
        interferer = PulseInterferer(
            pulse_power=30.0, symbol_probability=0.3, rng=np.random.default_rng(0)
        )
        channel = IndoorChannel.position("A", snr_db=15.0, seed=5, interferer=interferer)
        link = CosLink(channel=channel)
        stats = link.run(n_packets=8, payload=b"i" * 200)
        # The loop survives; no exception, statistics well-formed.
        assert 0.0 <= stats.prr <= 1.0
        assert 0.0 <= stats.control_accuracy <= 1.0

    def test_very_low_snr_falls_back(self):
        channel = IndoorChannel.position("C", snr_db=2.5, seed=1)
        link = CosLink(channel=channel)
        outcome = link.exchange(b"x" * 100, [1, 0, 1, 0])
        assert outcome.rate_mbps == 6  # lowest rate selected

    def test_rate_tracks_snr_changes(self):
        """Selected rate follows the adapter as SNR shifts."""
        adapter = RateAdapter()
        for snr in (7.5, 10.0, 13.0, 18.0, 21.0, 23.0):
            channel = IndoorChannel.position("B", snr_db=snr, seed=3)
            link = CosLink(channel=channel)
            outcome = link.exchange(b"r" * 100, [])
            assert outcome.rate_mbps == adapter.select(snr).mbps


class TestBudgetInvariants:
    def test_silences_respect_allocation(self):
        channel = IndoorChannel.position("A", snr_db=15.0, seed=5)
        link = CosLink(channel=channel)
        for _ in range(5):
            outcome = link.exchange(b"b" * 400, np.ones(200, dtype=np.uint8))
            alloc = link.controller.allocation(outcome.measured_snr_db, 70)
            assert outcome.n_silences <= alloc.target_silences + 1

    def test_control_rate_lower_in_64qam_band(self):
        """The adaptive controller inserts fewer silences at 64QAM rates —
        the decreasing envelope of Fig. 9 as seen by the closed loop."""
        def silences_at(snr):
            channel = IndoorChannel.position("B", snr_db=snr, seed=4)
            link = CosLink(channel=channel)
            stats = link.run(n_packets=5, payload=b"c" * 400)
            return stats.total_silences / stats.n_packets

        assert silences_at(8.5) > silences_at(23.5)
