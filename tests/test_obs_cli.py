"""CLI-level tests: --trace-out/--metrics-out, obs summarize, logging flags."""

import gc
import json
import logging

import pytest

import repro.obs as obs
from repro.cli import build_parser, main
from repro.obs.metrics import MetricsRegistry, set_registry


@pytest.fixture(autouse=True)
def _isolated_obs():
    previous = set_registry(MetricsRegistry())
    obs.shutdown()
    yield
    obs.shutdown()
    set_registry(previous)


class TestParser:
    def test_link_obs_flags(self):
        args = build_parser().parse_args(
            ["link", "--trace-out", "t.jsonl", "--metrics-out", "m.prom"]
        )
        assert args.trace_out == "t.jsonl"
        assert args.metrics_out == "m.prom"

    def test_obs_summarize_args(self):
        args = build_parser().parse_args(["obs", "summarize", "trace.jsonl"])
        assert args.obs_command == "summarize"
        assert args.trace == "trace.jsonl"

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])

    def test_global_logging_flags(self):
        args = build_parser().parse_args(["--log-level", "debug", "info"])
        assert args.log_level == "debug"
        args = build_parser().parse_args(["--quiet", "info"])
        assert args.quiet is True

    def test_invalid_log_level_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--log-level", "loud", "info"])


class TestLinkTracing:
    def test_link_writes_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        prom = tmp_path / "metrics.prom"
        code = main([
            "--quiet", "link", "--packets", "4", "--payload", "200",
            "--snr", "15", "--seed", "5",
            "--trace-out", str(trace), "--metrics-out", str(prom),
        ])
        assert code == 0
        assert "data PRR" in capsys.readouterr().out

        events = list(obs.read_jsonl(trace))
        kinds = {e["type"] for e in events}
        assert kinds == {"span", "flight"}
        exchanges = [e for e in events
                     if e["type"] == "span" and e["name"] == "cos.exchange"]
        flights = [e for e in events if e["type"] == "flight"]
        assert len(exchanges) == 4
        assert len(flights) == 4

        text = prom.read_text()
        assert "repro_exchanges_total 4.0" in text
        assert "repro_span_seconds_bucket" in text
        assert "repro_flight_total" in text

    def test_metrics_json_export(self, tmp_path):
        out = tmp_path / "metrics.json"
        assert main(["--quiet", "link", "--packets", "2", "--payload", "200",
                     "--metrics-out", str(out)]) == 0
        snap = json.loads(out.read_text())
        assert snap["repro_exchanges_total"]["series"][0]["value"] == 2.0

    def test_tracing_disabled_after_run(self, tmp_path):
        from repro.obs import trace as trace_mod

        main(["--quiet", "link", "--packets", "1", "--payload", "200",
              "--trace-out", str(tmp_path / "t.jsonl")])
        assert trace_mod.current_tracer() is None


class TestObsSummarize:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        # Coverage below is a wall-clock ratio; a GC pass triggered by
        # garbage from earlier tests would land in the untraced gaps and
        # skew it, so start from a clean heap.
        gc.collect()
        assert main(["--quiet", "link", "--packets", "4", "--payload", "200",
                     "--trace-out", str(path)]) == 0
        return path

    def test_summarize_prints_tables(self, trace_path, capsys):
        capsys.readouterr()
        assert main(["--quiet", "obs", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "Per-stage latency" in out
        assert "cos.exchange" in out
        assert "p50 ms" in out and "p95 ms" in out
        assert "Failure causes" in out
        assert "span coverage" in out
        # summarize must not re-run the simulation: it only reads the file
        assert "data PRR" not in out

    def test_summarize_coverage_acceptance(self, trace_path):
        summary = obs.summarize_trace(trace_path)
        # Structural check: child spans must cover nearly all of
        # cos.exchange (a missing stage would drop this far lower, e.g.
        # phy.viterbi alone is ~75 %).  Leave headroom for scheduler and
        # allocator jitter when the whole suite runs on a loaded core.
        assert summary.exchange_coverage >= 0.85

    def test_summarize_json(self, trace_path, capsys):
        capsys.readouterr()
        assert main(["--quiet", "obs", "summarize", str(trace_path),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_flights"] == 4
        assert payload["exchange_coverage"] >= 0.85
        assert any(s["name"] == "phy.viterbi" for s in payload["stages"])

    def test_summarize_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["--quiet", "obs", "summarize", str(tmp_path / "nope.jsonl")])


class TestLoggingFlags:
    def test_quiet_suppresses_diagnostics(self, tmp_path, capsys):
        main(["--quiet", "link", "--packets", "1", "--payload", "200",
              "--trace-out", str(tmp_path / "t.jsonl")])
        captured = capsys.readouterr()
        assert "trace written" not in captured.err

    def test_info_level_reports_trace_path(self, tmp_path, capsys):
        main(["--log-level", "info", "link", "--packets", "1",
              "--payload", "200", "--trace-out", str(tmp_path / "t.jsonl")])
        assert "trace written" in capsys.readouterr().err

    def test_setup_logging_sets_level(self):
        from repro.cli import setup_logging

        setup_logging("debug")
        assert logging.getLogger("repro").level == logging.DEBUG
        setup_logging("info", quiet=True)
        assert logging.getLogger("repro").level == logging.ERROR
