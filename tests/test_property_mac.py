"""Property-based tests for the DCF simulator and the control stream."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cos.stream import ReliableControlReceiver, ReliableControlSender
from repro.mac.dcf import DcfSimulator, Frame, Station


def _stations(spec):
    stations = []
    for i, n_frames in enumerate(spec):
        queue = [
            Frame(kind="data", duration_us=200.0, payload_bits=1000)
            for _ in range(n_frames)
        ]
        stations.append(Station(name=f"s{i}", queue=queue))
    return stations


class TestDcfProperties:
    @given(
        st.lists(st.integers(0, 12), min_size=1, max_size=6),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_airtime_accounts_for_elapsed_time(self, spec, seed):
        stats = DcfSimulator(_stations(spec), rng=seed).run(duration_us=5e4)
        total = sum(stats.airtime_us.values())
        assert total >= stats.elapsed_us * 0.95
        assert stats.elapsed_us <= 5e4 + 1000  # bounded overshoot (one txop)

    @given(
        st.lists(st.integers(1, 10), min_size=1, max_size=5),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_delivered_never_exceeds_offered(self, spec, seed):
        offered = sum(spec)
        stats = DcfSimulator(_stations(spec), rng=seed).run(duration_us=1e6)
        assert stats.delivered_frames + stats.drops <= offered

    @given(st.integers(1, 30), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_single_station_never_collides(self, n_frames, seed):
        stats = DcfSimulator(_stations([n_frames]), rng=seed).run(duration_us=1e6)
        assert stats.collisions == 0
        assert stats.delivered_frames == n_frames


class TestStreamProperties:
    @given(st.binary(min_size=1, max_size=64), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_transfer_over_random_loss(self, data, seed):
        """Any payload survives any i.i.d. loss pattern below 60 %."""
        rng = np.random.default_rng(seed)
        sender = ReliableControlSender(data)
        receiver = ReliableControlReceiver()
        for _ in range(3000):
            if sender.done:
                break
            payload = sender.next_payload()
            if rng.random() < 0.6:
                continue
            sender.on_ack(receiver.on_payload(payload))
        assert sender.done
        assert receiver.data(len(data)) == data

    @given(st.binary(min_size=1, max_size=32), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_corruption_never_corrupts_output(self, data, seed):
        """Bit-flipped frames are rejected by the checksum, so the
        assembled prefix always matches the source."""
        rng = np.random.default_rng(seed)
        sender = ReliableControlSender(data)
        receiver = ReliableControlReceiver()
        for _ in range(2000):
            if sender.done:
                break
            payload = sender.next_payload().copy()
            if rng.random() < 0.3:
                payload[rng.integers(0, payload.size)] ^= 1
            sender.on_ack(receiver.on_payload(payload))
        got = receiver.data(len(data))
        assert data.startswith(got) or got == data
