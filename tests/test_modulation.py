"""Unit tests for constellation mapping/demapping."""

import numpy as np
import pytest

from repro.phy.modulation import MODULATIONS, get_modulation


class TestTables:
    def test_registry(self):
        assert set(MODULATIONS) == {"bpsk", "qpsk", "16qam", "64qam"}

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_modulation("8psk")

    @pytest.mark.parametrize("name", sorted(MODULATIONS))
    def test_unit_average_energy(self, name):
        mod = get_modulation(name)
        energy = np.mean(np.abs(mod.constellation) ** 2)
        assert energy == pytest.approx(1.0, rel=1e-12)

    def test_constellation_sizes(self):
        assert get_modulation("bpsk").constellation.size == 2
        assert get_modulation("qpsk").constellation.size == 4
        assert get_modulation("16qam").constellation.size == 16
        assert get_modulation("64qam").constellation.size == 64

    def test_min_distance_values(self):
        assert get_modulation("bpsk").min_distance == pytest.approx(2.0)
        assert get_modulation("qpsk").min_distance == pytest.approx(np.sqrt(2.0))
        assert get_modulation("16qam").min_distance == pytest.approx(2 / np.sqrt(10))
        assert get_modulation("64qam").min_distance == pytest.approx(2 / np.sqrt(42))

    def test_min_symbol_energy(self):
        assert get_modulation("qpsk").min_symbol_energy == pytest.approx(1.0)
        assert get_modulation("16qam").min_symbol_energy == pytest.approx(0.2)
        assert get_modulation("64qam").min_symbol_energy == pytest.approx(2 / 42)


class TestMapping:
    def test_bpsk_map(self):
        mod = get_modulation("bpsk")
        symbols = mod.map_bits(np.array([0, 1]))
        assert symbols.tolist() == [(-1 + 0j), (1 + 0j)]

    def test_qpsk_gray_map(self):
        mod = get_modulation("qpsk")
        s = mod.map_bits(np.array([0, 0, 1, 1]))
        k = 1 / np.sqrt(2)
        assert s[0] == pytest.approx(-k - k * 1j)
        assert s[1] == pytest.approx(k + k * 1j)

    def test_16qam_standard_points(self):
        mod = get_modulation("16qam")
        k = 1 / np.sqrt(10)
        # (b0 b1 b2 b3) = 0000 -> I=-3, Q=-3 per Table 18-11.
        assert mod.map_bits(np.array([0, 0, 0, 0]))[0] == pytest.approx(-3 * k - 3j * k)
        # 1011 -> I=+3 (10), Q=+1 (11).
        assert mod.map_bits(np.array([1, 0, 1, 1]))[0] == pytest.approx(3 * k + 1j * k)

    def test_64qam_extreme_points(self):
        mod = get_modulation("64qam")
        k = 1 / np.sqrt(42)
        assert mod.map_bits(np.array([0, 0, 0, 0, 0, 0]))[0] == pytest.approx(-7 * k - 7j * k)
        assert mod.map_bits(np.array([1, 0, 0, 1, 0, 0]))[0] == pytest.approx(7 * k + 7j * k)

    def test_wrong_bit_count_rejected(self):
        with pytest.raises(ValueError):
            get_modulation("16qam").map_bits(np.array([1, 0, 1]))


class TestHardDemap:
    @pytest.mark.parametrize("name", sorted(MODULATIONS))
    def test_roundtrip_noiseless(self, name, rng):
        mod = get_modulation(name)
        bits = rng.integers(0, 2, 60 * mod.bits_per_symbol, dtype=np.uint8)
        assert np.array_equal(mod.demap_hard(mod.map_bits(bits)), bits)

    @pytest.mark.parametrize("name", sorted(MODULATIONS))
    def test_roundtrip_small_noise(self, name, rng):
        mod = get_modulation(name)
        bits = rng.integers(0, 2, 60 * mod.bits_per_symbol, dtype=np.uint8)
        symbols = mod.map_bits(bits)
        noisy = symbols + (mod.min_distance / 4) * (
            rng.standard_normal(symbols.size) * 0.3
        )
        assert np.array_equal(mod.demap_hard(noisy), bits)


class TestSoftDemap:
    @pytest.mark.parametrize("name", sorted(MODULATIONS))
    def test_llr_signs_match_hard_decision(self, name, rng):
        mod = get_modulation(name)
        bits = rng.integers(0, 2, 40 * mod.bits_per_symbol, dtype=np.uint8)
        symbols = mod.map_bits(bits)
        noisy = symbols + 0.05 * (
            rng.standard_normal(symbols.size) + 1j * rng.standard_normal(symbols.size)
        )
        llrs = mod.demap_soft(noisy)
        hard = (llrs < 0).astype(np.uint8)
        assert np.array_equal(hard, mod.demap_hard(noisy))

    def test_csi_scales_llrs(self):
        mod = get_modulation("qpsk")
        bits = np.array([0, 0, 1, 1], dtype=np.uint8)
        symbols = mod.map_bits(bits)
        base = mod.demap_soft(symbols, csi=1.0)
        scaled = mod.demap_soft(symbols, csi=3.0)
        assert np.allclose(scaled, 3.0 * base)

    def test_per_symbol_csi(self):
        mod = get_modulation("bpsk")
        symbols = mod.map_bits(np.array([0, 0], dtype=np.uint8))
        llrs = mod.demap_soft(symbols, csi=np.array([1.0, 5.0]))
        assert llrs[1] == pytest.approx(5.0 * llrs[0])

    def test_ambiguous_symbol_gives_zero_llr(self):
        mod = get_modulation("bpsk")
        llrs = mod.demap_soft(np.array([0.0 + 0.0j]))
        assert llrs[0] == pytest.approx(0.0, abs=1e-12)

    def test_llr_magnitude_grows_with_distance(self):
        mod = get_modulation("bpsk")
        near = abs(mod.demap_soft(np.array([0.1 + 0j]))[0])
        far = abs(mod.demap_soft(np.array([0.9 + 0j]))[0])
        assert far > near
