"""Tests for the multi-BSS scale-out: grid culling, roaming, traffic.

The load-bearing guarantees:

* **Equivalence** — the grid-culled medium with the interference floor
  at ``-inf`` is *bit-for-bit* identical to the all-pairs
  ``dense-exact`` medium (same events, same RNG stream, same results),
  and at the default floor the goodput difference stays within 1 %.
* **Topology invariants** — the spatial index returns a superset of the
  true disk, the static path-loss cache never changes a value, and the
  coincident-node clamp keeps path loss finite.
* **Roaming** — walkers on the campus corridor hand off to the
  strongest AP (with hysteresis) and the hand-offs are counted.
* **Traffic** — the three arrival models honour rate, span, and
  determinism contracts.
"""

import dataclasses
import json
import math
import os

import numpy as np
import pytest

from repro.net import (
    BssSpec,
    GridIndex,
    NetLens,
    RadioSpec,
    ScenarioSpec,
    TrafficSpec,
    builtin_scenario,
    run_scenario,
)
from repro.net.scenario import NodeSpec
from repro.net.traffic import arrival_times, mean_rate_pps
from repro.net.topology import Topology, Waypoint

SCENARIO_DIR = os.path.join(os.path.dirname(__file__), "..", "scenarios")


# ---------------------------------------------------------------------------
# Spatial index
# ---------------------------------------------------------------------------


class TestGridIndex:
    def test_query_disk_matches_brute_force(self):
        rng = np.random.default_rng(0)
        pts = {f"n{i}": (float(x), float(y))
               for i, (x, y) in enumerate(rng.uniform(0, 200, size=(80, 2)))}
        grid = GridIndex(cell_m=30.0)
        for name, (x, y) in pts.items():
            grid.insert(name, x, y)
        for radius in (10.0, 45.0, 150.0):
            got = set(grid.query_disk(100.0, 100.0, radius))
            want = {n for n, (x, y) in pts.items()
                    if math.hypot(x - 100.0, y - 100.0) <= radius}
            # The grid returns a cell-aligned superset of the true disk.
            assert want <= got

    def test_infinite_radius_returns_everything(self):
        grid = GridIndex(cell_m=10.0)
        for i in range(5):
            grid.insert(f"n{i}", i * 100.0, -i * 50.0)
        assert set(grid.query_disk(0.0, 0.0, float("inf"))) == {
            f"n{i}" for i in range(5)
        }

    def test_move_and_remove(self):
        grid = GridIndex(cell_m=10.0)
        grid.insert("a", 0.0, 0.0)
        grid.move("a", 500.0, 500.0)
        assert "a" not in grid.query_disk(0.0, 0.0, 20.0)
        assert "a" in grid.query_disk(500.0, 500.0, 20.0)
        grid.remove("a")
        assert "a" not in grid
        assert len(grid) == 0


# ---------------------------------------------------------------------------
# Radio / topology invariants
# ---------------------------------------------------------------------------


class TestTopologyInvariants:
    def test_coincident_nodes_have_finite_path_loss(self):
        topo = Topology({"a": (5.0, 5.0), "b": (5.0, 5.0)})
        rx = topo.rx_power_dbm("a", "b")
        assert math.isfinite(rx)
        # Clamped at the reference distance: the free-space reference loss.
        assert rx == pytest.approx(
            topo.radio.tx_power_dbm - topo.radio.ref_loss_db)

    def test_min_distance_clamp_floors_close_pairs(self):
        radio = RadioSpec(min_distance_m=2.0)
        topo = Topology({"a": (0.0, 0.0), "b": (0.5, 0.0)}, radio=radio)
        assert topo.path_loss_db(0.5) == topo.path_loss_db(2.0)
        assert topo.path_loss_db(3.0) > topo.path_loss_db(2.0)

    @pytest.mark.parametrize("bad", [
        dict(min_distance_m=0.0),
        dict(min_distance_m=-1.0),
        dict(ref_distance_m=0.0),
        dict(adjacent_rejection_db=-1.0),
        dict(bandwidth_hz=0.0),
    ])
    def test_radio_spec_validation(self, bad):
        with pytest.raises(ValueError):
            RadioSpec(**bad)

    def test_static_pair_cache_is_exact(self):
        topo = Topology({f"n{i}": (i * 13.0, i * 7.0) for i in range(6)})
        names = list(topo.names)
        fresh = {}
        for a in names:
            for b in names:
                if a != b:
                    fresh[(a, b)] = topo.rx_power_dbm(a, b)
        # Second pass is served from the symmetric cache.
        for (a, b), val in fresh.items():
            assert topo.rx_power_dbm(a, b) == val

    def test_neighbors_of_is_superset_of_disk(self):
        rng = np.random.default_rng(3)
        positions = {f"n{i}": (float(x), float(y))
                     for i, (x, y) in enumerate(
                         rng.uniform(0, 300, size=(50, 2)))}
        topo = Topology(positions)
        radius = topo.cs_range_m
        for name in ("n0", "n17", "n42"):
            got = set(topo.neighbors_of(name, radius, 0.0))
            x, y = topo.position(name)
            want = {n for n in positions if n != name
                    and topo.distance_m(name, n) <= radius}
            assert want <= got

    def test_mobile_nodes_always_in_neighbors(self):
        topo = Topology(
            {"a": (0.0, 0.0), "walker": (10_000.0, 0.0)},
            mobility={"walker": [Waypoint(0.0, 10_000.0, 0.0),
                                 Waypoint(1e6, 0.0, 0.0)]},
        )
        assert topo.is_mobile("walker")
        # Far outside any grid radius, yet still visited by culling.
        assert "walker" in topo.neighbors_of("a", 50.0, 0.0)

    def test_invalidate_pins_node_and_keeps_powers_consistent(self):
        topo = Topology(
            {"a": (0.0, 0.0), "walker": (100.0, 0.0)},
            mobility={"walker": [Waypoint(0.0, 100.0, 0.0),
                                 Waypoint(1000.0, 20.0, 0.0)]},
        )
        before = topo.rx_power_dbm("walker", "a", 1000.0)
        topo.invalidate("walker", 1000.0)
        assert not topo.is_mobile("walker")
        assert topo.position("walker", 5000.0) == (20.0, 0.0)
        assert topo.rx_power_dbm("walker", "a", 5000.0) == before


# ---------------------------------------------------------------------------
# Culled vs dense-exact equivalence
# ---------------------------------------------------------------------------


def _with_floor(spec, floor_dbm):
    return dataclasses.replace(
        spec, radio=dataclasses.replace(spec.radio,
                                        interference_floor_dbm=floor_dbm))


class TestMediumEquivalence:
    @pytest.mark.parametrize("scenario", ["hidden-node", "contention"])
    def test_culled_at_inf_floor_is_bit_identical(self, scenario):
        spec = builtin_scenario(scenario, n_packets=40,
                                duration_us=60_000.0)
        spec = _with_floor(spec, float("-inf"))
        culled = run_scenario(spec.with_medium("culled"), rng=11)
        dense = run_scenario(spec.with_medium("dense-exact"), rng=11)
        assert json.dumps(culled.to_dict(), sort_keys=True) == \
            json.dumps(dense.to_dict(), sort_keys=True)

    def test_campus_roaming_bit_identical_with_mobility_and_beacons(self):
        spec = _with_floor(builtin_scenario("campus-roaming",
                                            duration_us=200_000.0),
                           float("-inf"))
        culled = run_scenario(spec.with_medium("culled"), rng=4)
        dense = run_scenario(spec.with_medium("dense-exact"), rng=4)
        assert culled.to_dict() == dense.to_dict()
        assert culled.associations == dense.associations

    @pytest.mark.parametrize("scenario", ["hidden-node", "contention"])
    def test_default_floor_goodput_within_one_percent(self, scenario):
        spec = builtin_scenario(scenario, n_packets=40,
                                duration_us=60_000.0)
        culled = run_scenario(spec.with_medium("culled"), rng=2)
        dense = run_scenario(spec.with_medium("dense-exact"), rng=2)
        assert culled.aggregate_goodput_mbps == pytest.approx(
            dense.aggregate_goodput_mbps, rel=0.01)

    def test_enterprise_grid_goodput_close_across_modes(self):
        spec = builtin_scenario("enterprise-grid", n_aps=4,
                                stations_per_ap=6, duration_us=50_000.0)
        culled = run_scenario(spec, rng=0)
        dense = run_scenario(spec.with_medium("dense-exact"), rng=0)
        assert culled.aggregate_goodput_mbps == pytest.approx(
            dense.aggregate_goodput_mbps, rel=0.1)
        # Event counts may drift slightly at a finite floor (sub-floor
        # power is dropped from carrier sense), but not structurally.
        assert abs(culled.n_events - dense.n_events) <= \
            0.01 * dense.n_events + 1


# ---------------------------------------------------------------------------
# Association and roaming
# ---------------------------------------------------------------------------


class TestRoaming:
    def test_walkers_hand_off_along_the_corridor(self):
        spec = builtin_scenario("campus-roaming")
        result = run_scenario(spec, rng=1)
        assert result.n_roams >= 2
        # Odd/even walkers traverse in opposite directions and end on
        # the far AP (hysteresis may leave them one cell short only if
        # the walk were truncated — it is not).
        assert result.associations["walker0"] == "ap2"
        assert result.associations["walker1"] == "ap0"
        assert result.per_node["walker0"].roams >= 1
        assert result.per_node["walker1"].roams >= 1
        # Static stations stay put.
        assert result.per_node["sta1_0"].roams == 0
        assert result.associations["sta1_0"] == "ap1"

    def test_roams_and_associations_in_result_dict(self):
        spec = builtin_scenario("campus-roaming", duration_us=200_000.0)
        result = run_scenario(spec, rng=1)
        d = result.to_dict()
        assert d["n_roams"] == result.n_roams
        assert d["associations"] == result.associations
        assert d["per_node"]["walker0"]["roams"] == \
            result.per_node["walker0"].roams

    def test_hysteresis_suppresses_pingpong(self):
        # With an enormous hysteresis no one ever roams.
        spec = dataclasses.replace(builtin_scenario("campus-roaming"),
                                   roam_hysteresis_db=200.0)
        result = run_scenario(spec, rng=1)
        assert result.n_roams == 0

    def test_static_grid_never_roams(self):
        spec = builtin_scenario("enterprise-grid", n_aps=4,
                                stations_per_ap=4, duration_us=60_000.0)
        result = run_scenario(spec, rng=0)
        assert result.n_roams == 0
        for a in range(4):
            assert result.associations[f"sta{a}_0"] == f"ap{a}"


# ---------------------------------------------------------------------------
# Traffic models
# ---------------------------------------------------------------------------


class TestTraffic:
    def test_cbr_is_deterministic_and_regular(self):
        spec = TrafficSpec(src="s", dst="d", model="cbr", rate_pps=1000.0)
        times = arrival_times(spec, 100_000.0, np.random.default_rng(0))
        assert len(times) == 101  # inclusive of t=0 and t=100ms
        gaps = np.diff(times)
        assert np.allclose(gaps, 1000.0)

    def test_poisson_rate_is_approximately_honoured(self):
        spec = TrafficSpec(src="s", dst="d", model="poisson", rate_pps=500.0)
        times = arrival_times(spec, 2_000_000.0, np.random.default_rng(1))
        assert len(times) == pytest.approx(1000, rel=0.15)
        assert all(0.0 <= t <= 2_000_000.0 for t in times)

    def test_onoff_respects_span_and_determinism(self):
        spec = TrafficSpec(src="s", dst="d", model="onoff", rate_pps=300.0,
                           start_us=10_000.0, stop_us=80_000.0)
        a = arrival_times(spec, 100_000.0, np.random.default_rng(7))
        b = arrival_times(spec, 100_000.0, np.random.default_rng(7))
        assert a == b
        assert all(10_000.0 <= t <= 80_000.0 for t in a)

    def test_mean_rate_pps(self):
        cbr = TrafficSpec(src="s", dst="d", model="cbr", rate_pps=80.0)
        assert mean_rate_pps(cbr) == 80.0
        onoff = TrafficSpec(src="s", dst="d", model="onoff", rate_pps=100.0,
                            burst_on_us=10_000.0, burst_off_us=30_000.0)
        assert mean_rate_pps(onoff) == pytest.approx(25.0)


# ---------------------------------------------------------------------------
# Channels
# ---------------------------------------------------------------------------


class TestChannels:
    def test_adjacent_channel_rejection_scales_with_separation(self):
        spec = builtin_scenario("enterprise-grid", n_aps=2,
                                stations_per_ap=2, n_channels=2,
                                duration_us=30_000.0)
        assert {b.channel for b in spec.bsses} == {0, 1}
        result = run_scenario(spec, rng=0)
        assert result.aggregate_goodput_mbps > 0

    def test_single_channel_grid_contends_more(self):
        kw = dict(n_aps=4, stations_per_ap=5, duration_us=50_000.0,
                  rate_pps=200.0)
        reuse3 = run_scenario(
            builtin_scenario("enterprise-grid", n_channels=3, **kw), rng=0)
        reuse1 = run_scenario(
            builtin_scenario("enterprise-grid", n_channels=1, **kw), rng=0)
        # Frequency reuse must not hurt; with co-channel neighbours the
        # same offered load collides more / defers more.
        assert reuse3.aggregate_goodput_mbps >= reuse1.aggregate_goodput_mbps


# ---------------------------------------------------------------------------
# Spec round-trips and validation
# ---------------------------------------------------------------------------


class TestSpecSerialisation:
    @pytest.mark.parametrize("fname,builtin", [
        ("enterprise_grid.json", "enterprise-grid"),
        ("campus_roaming.json", "campus-roaming"),
    ])
    def test_shipped_scenarios_match_factories(self, fname, builtin):
        spec = ScenarioSpec.load(os.path.join(SCENARIO_DIR, fname))
        assert spec == builtin_scenario(builtin)

    def test_bss_traffic_json_roundtrip(self):
        spec = builtin_scenario("campus-roaming")
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.bsses[0] == BssSpec(
            ap=spec.bsses[0].ap, channel=spec.bsses[0].channel,
            stations=spec.bsses[0].stations)

    @pytest.mark.parametrize("mutate,match", [
        (lambda s: dataclasses.replace(s, bsses=s.bsses + (s.bsses[0],)),
         "unique"),
        (lambda s: dataclasses.replace(
            s, bsses=(BssSpec(ap="nope"),)), "not a node"),
        (lambda s: dataclasses.replace(
            s, bsses=(BssSpec(ap="ap0", stations=("ap1",)),
                      BssSpec(ap="ap1"))), "AP and station"),
        (lambda s: dataclasses.replace(
            s, traffic=(TrafficSpec(src="sta0_0", model="weird"),)),
         "traffic model"),
        (lambda s: dataclasses.replace(s, medium_mode="magic"), "medium_mode"),
        (lambda s: dataclasses.replace(s, beacon_interval_us=0.0), "beacon"),
    ])
    def test_spec_validation_rejects(self, mutate, match):
        spec = builtin_scenario("campus-roaming")
        with pytest.raises(ValueError, match=match):
            mutate(spec)

    def test_at_ap_traffic_requires_bsses(self):
        with pytest.raises(ValueError, match="@ap"):
            ScenarioSpec(
                name="x",
                nodes=(NodeSpec("a"), NodeSpec("b", 10.0)),
                flows=(),
                traffic=(TrafficSpec(src="a", dst="@ap"),),
            )

    def test_station_in_two_bsses_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            ScenarioSpec(
                name="x",
                nodes=(NodeSpec("ap0"), NodeSpec("ap1", 60.0),
                       NodeSpec("s", 30.0)),
                flows=(),
                bsses=(BssSpec(ap="ap0", stations=("s",)),
                       BssSpec(ap="ap1", stations=("s",))),
            )


# ---------------------------------------------------------------------------
# Lens integration: beacons, assoc events, per-BSS rollup
# ---------------------------------------------------------------------------


class TestBssObservability:
    def test_beacon_airtime_and_assoc_events(self):
        spec = builtin_scenario("campus-roaming", duration_us=200_000.0)
        result = run_scenario(spec, rng=1, lens=NetLens(wall_clock=False))
        ledger = result.ledger
        # APs spend airtime beaconing; it is accounted as its own kind.
        assert ledger["per_node"]["ap0"]["tx_beacon_us"] > 0
        assert ledger["airtime_us"].get("beacon", 0.0) > 0
        # The initial association map drives a per-BSS rollup.
        assert set(ledger["per_bss"]) == {"ap0", "ap1", "ap2"}
        total_nodes = sum(v["n_nodes"] for v in ledger["per_bss"].values())
        assert total_nodes == len(spec.nodes)
        # Roams show up as assoc trace events with prev set.
        roams = [ev for ev in result.events
                 if ev["event"] == "assoc" and ev["roam"]]
        assert len(roams) == result.n_roams
        for ev in roams:
            assert ev["prev"] is not None and ev["dst"] != ev["prev"]

    def test_timeline_groups_by_bss_and_paints_beacons(self):
        from repro.obs.timeline import render_timeline

        spec = builtin_scenario("campus-roaming", duration_us=120_000.0)
        result = run_scenario(spec, rng=0, lens=NetLens(wall_clock=False))
        art = render_timeline(result.events)
        assert "-- bss ap0 --" in art
        assert "B" in art  # beacon paint character


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------


class TestCli:
    def test_net_list_shows_scale_columns(self, capsys):
        from repro.cli import main

        assert main(["net", "list"]) == 0
        out = capsys.readouterr().out
        assert "enterprise-grid" in out and "campus-roaming" in out
        assert "bsses" in out and "traffic" in out

    def test_net_run_medium_override(self, capsys):
        from repro.cli import main

        rc = main(["--quiet", "net", "run", "contention",
                   "--medium", "dense-exact", "--json", "-"])
        assert rc == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["scenario"].startswith("contention")

    def test_net_run_shipped_scenario_file(self, capsys):
        from repro.cli import main

        path = os.path.join(SCENARIO_DIR, "campus_roaming.json")
        assert main(["--quiet", "net", "run", path]) == 0
        assert "campus-roaming" in capsys.readouterr().out

    def test_net_run_reads_repro_workers(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_WORKERS", "2")
        rc = main(["net", "run", "hidden-node", "--trials", "2",
                   "--json", "-"])
        assert rc == 0
