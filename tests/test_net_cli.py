"""Tests for the ``repro net`` CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.net import ScenarioSpec, builtin_scenario


@pytest.fixture()
def small_scenario_path(tmp_path):
    spec = builtin_scenario("hidden-node", n_packets=30, duration_us=30_000.0)
    path = tmp_path / "small.json"
    spec.save(str(path))
    return str(path)


class TestNetList:
    def test_lists_builtins(self, capsys):
        assert main(["net", "list"]) == 0
        out = capsys.readouterr().out
        assert "hidden-node" in out
        assert "contention" in out


class TestNetRun:
    def test_run_scenario_file_with_json_export(self, small_scenario_path,
                                                capsys):
        assert main(["net", "run", small_scenario_path, "--json", "-"]) == 0
        out = capsys.readouterr().out
        assert "Scenario hidden-node" in out
        summary = json.loads(out[out.index("{"):])
        assert summary["scenario"] == "hidden-node"
        assert summary["control"] == "cos"
        assert summary["per_node"]["sta_near"]["goodput_mbps"] > 0

    def test_control_override(self, small_scenario_path, capsys):
        assert main(["net", "run", small_scenario_path,
                     "--control", "explicit"]) == 0
        assert "[explicit control" in capsys.readouterr().out

    def test_run_builtin_by_name(self, capsys):
        assert main(["net", "run", "contention", "--seed", "3"]) == 0
        assert "contention" in capsys.readouterr().out

    def test_unknown_scenario_errors(self):
        assert main(["net", "run", "no-such-scenario"]) == 2

    def test_json_and_metrics_files(self, small_scenario_path, tmp_path):
        summary_path = tmp_path / "summary.json"
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "net", "run", small_scenario_path,
            "--trials", "2", "--workers", "0",
            "--json", str(summary_path),
            "--metrics-out", str(metrics_path),
        ]) == 0
        summary = json.loads(summary_path.read_text())
        assert summary["n_trials"] == 2
        metrics = json.loads(metrics_path.read_text())
        assert any("repro_net" in name for name in metrics)

    def test_parallel_summary_matches_serial(self, small_scenario_path,
                                             tmp_path):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        for workers, path in (("0", serial), ("2", parallel)):
            assert main([
                "net", "run", small_scenario_path,
                "--trials", "2", "--seed", "17", "--workers", workers,
                "--json", str(path),
            ]) == 0
        assert json.loads(serial.read_text()) == json.loads(parallel.read_text())


class TestScenarioFileInRepo:
    def test_shipped_example_parses(self):
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "scenarios" / "hidden_node.json"
        spec = ScenarioSpec.load(str(path))
        assert spec.name == "hidden-node"
        assert {n.name for n in spec.nodes} == {"ap", "sta_near", "sta_hidden"}


class TestNetTables:
    def test_inspect_default_table(self, capsys):
        assert main(["net", "tables", "inspect"]) == 0
        out = capsys.readouterr().out
        assert "Surrogate table" in out
        assert "CoS accuracy" in out
        for rate in (6, 54):
            assert f"\n{rate} " in out or out.startswith(f"{rate} ")

    def test_build_quick_then_inspect(self, tmp_path, capsys):
        path = tmp_path / "quick.json"
        assert main(["--quiet", "net", "tables", "build", "--quick",
                     "--out", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["net", "tables", "inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "8 pkts x 1 seed(s)" in out

    def test_inspect_missing_table_errors(self, tmp_path):
        assert main(["net", "tables", "inspect",
                     str(tmp_path / "nope.json")]) == 2

    def test_fidelity_override(self, small_scenario_path, capsys):
        assert main(["net", "run", small_scenario_path,
                     "--fidelity", "surrogate"]) == 0
        assert "hidden-node" in capsys.readouterr().out
