"""Tests for the ``repro net`` CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.net import ScenarioSpec, builtin_scenario


@pytest.fixture()
def small_scenario_path(tmp_path):
    spec = builtin_scenario("hidden-node", n_packets=30, duration_us=30_000.0)
    path = tmp_path / "small.json"
    spec.save(str(path))
    return str(path)


class TestNetList:
    def test_lists_builtins(self, capsys):
        assert main(["net", "list"]) == 0
        out = capsys.readouterr().out
        assert "hidden-node" in out
        assert "contention" in out
        assert "cross-cell" in out

    def test_lists_controllers(self, capsys):
        from repro.ratectl import available_controllers

        assert main(["net", "list"]) == 0
        out = capsys.readouterr().out
        assert "controller" in out
        for name in available_controllers():
            assert name in out


class TestNetRun:
    def test_run_scenario_file_with_json_export(self, small_scenario_path,
                                                capsys):
        assert main(["net", "run", small_scenario_path, "--json", "-"]) == 0
        out = capsys.readouterr().out
        assert "Scenario hidden-node" in out
        summary = json.loads(out[out.index("{"):])
        assert summary["scenario"] == "hidden-node"
        assert summary["control"] == "cos"
        assert summary["per_node"]["sta_near"]["goodput_mbps"] > 0

    def test_control_override(self, small_scenario_path, capsys):
        assert main(["net", "run", small_scenario_path,
                     "--control", "explicit"]) == 0
        assert "[explicit control" in capsys.readouterr().out

    def test_run_builtin_by_name(self, capsys):
        assert main(["net", "run", "contention", "--seed", "3"]) == 0
        assert "contention" in capsys.readouterr().out

    def test_unknown_scenario_errors(self):
        assert main(["net", "run", "no-such-scenario"]) == 2

    def test_json_and_metrics_files(self, small_scenario_path, tmp_path):
        summary_path = tmp_path / "summary.json"
        metrics_path = tmp_path / "metrics.json"
        assert main([
            "net", "run", small_scenario_path,
            "--trials", "2", "--workers", "0",
            "--json", str(summary_path),
            "--metrics-out", str(metrics_path),
        ]) == 0
        summary = json.loads(summary_path.read_text())
        assert summary["n_trials"] == 2
        metrics = json.loads(metrics_path.read_text())
        assert any("repro_net" in name for name in metrics)

    def test_controller_flag(self, small_scenario_path, capsys):
        assert main(["net", "run", small_scenario_path,
                     "--controller", "minstrel",
                     "--error-model", "surrogate", "--json", "-"]) == 0
        out = capsys.readouterr().out
        assert "minstrel controller" in out
        summary = json.loads(out[out.index("{"):])
        assert summary["controller"] == "minstrel"

    def test_unknown_controller_errors(self, small_scenario_path):
        # The message naming the available set is pinned in
        # tests/test_ratectl.py; here the CLI must refuse cleanly.
        assert main(["net", "run", small_scenario_path,
                     "--controller", "bogus"]) == 2

    def test_controller_env_fallback(self, small_scenario_path, capsys,
                                     monkeypatch):
        monkeypatch.setenv("REPRO_CONTROLLER", "samplerate")
        assert main(["net", "run", small_scenario_path]) == 0
        assert "samplerate controller" in capsys.readouterr().out

    def test_controller_flag_beats_env(self, small_scenario_path, capsys,
                                       monkeypatch):
        monkeypatch.setenv("REPRO_CONTROLLER", "samplerate")
        assert main(["net", "run", small_scenario_path,
                     "--controller", "minstrel"]) == 0
        assert "minstrel controller" in capsys.readouterr().out

    def test_parallel_summary_matches_serial(self, small_scenario_path,
                                             tmp_path):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        for workers, path in (("0", serial), ("2", parallel)):
            assert main([
                "net", "run", small_scenario_path,
                "--trials", "2", "--seed", "17", "--workers", workers,
                "--json", str(path),
            ]) == 0
        assert json.loads(serial.read_text()) == json.loads(parallel.read_text())


class TestScenarioFileInRepo:
    def test_shipped_example_parses(self):
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "scenarios" / "hidden_node.json"
        spec = ScenarioSpec.load(str(path))
        assert spec.name == "hidden-node"
        assert {n.name for n in spec.nodes} == {"ap", "sta_near", "sta_hidden"}


class TestNetTables:
    def test_inspect_default_table(self, capsys):
        assert main(["net", "tables", "inspect"]) == 0
        out = capsys.readouterr().out
        assert "Surrogate table" in out
        assert "CoS accuracy" in out
        for rate in (6, 54):
            assert f"\n{rate} " in out or out.startswith(f"{rate} ")

    def test_build_quick_then_inspect(self, tmp_path, capsys):
        path = tmp_path / "quick.json"
        assert main(["--quiet", "net", "tables", "build", "--quick",
                     "--out", str(path)]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["net", "tables", "inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "8 pkts x 1 seed(s)" in out

    def test_inspect_missing_table_errors(self, tmp_path):
        assert main(["net", "tables", "inspect",
                     str(tmp_path / "nope.json")]) == 2

    def test_fidelity_override(self, small_scenario_path, capsys):
        assert main(["net", "run", small_scenario_path,
                     "--fidelity", "surrogate"]) == 0
        assert "hidden-node" in capsys.readouterr().out

    def test_build_profile_quick(self, tmp_path, capsys):
        path = tmp_path / "profile_b.json"
        assert main(["--quiet", "net", "tables", "build", "--quick",
                     "--profile", "B", "--out", str(path)]) == 0
        capsys.readouterr()
        from repro.phy.surrogate import SurrogateTable

        table = SurrogateTable.load(str(path))
        assert table.spec.position == "B"
        assert table.spec.cos_position == "B"

    def test_committed_profile_tables_load(self):
        from repro.phy.surrogate import (
            SurrogateTable,
            profile_spec,
            profile_table_path,
        )

        for profile in ("B", "C"):
            table = SurrogateTable.load(str(profile_table_path(profile)))
            # Full-fidelity builds of the default-shaped spec, per profile.
            assert table.spec_hash == profile_spec(profile).spec_hash()

    def test_unknown_profile_rejected(self):
        from repro.phy.surrogate import profile_spec, profile_table_path

        for fn in (profile_spec, profile_table_path):
            with pytest.raises(ValueError):
                fn("D")


class TestNetCompare:
    def test_compare_two_controllers(self, small_scenario_path, capsys):
        assert main([
            "net", "compare", "--scenario", small_scenario_path,
            "--controllers", "cos-feedback,explicit-feedback",
            "--trials", "1", "--json", "-",
        ]) == 0
        out = capsys.readouterr().out
        assert "Rate-controller matrix" in out
        report = json.loads(out[out.index("{"):])
        assert report["scenario"] == "hidden-node"
        assert set(report["controllers"]) == {"cos-feedback",
                                              "explicit-feedback"}

    def test_compare_unknown_controller_errors(self, small_scenario_path):
        assert main(["net", "compare", "--scenario", small_scenario_path,
                     "--controllers", "bogus", "--trials", "1"]) == 2

    def test_compare_unknown_scenario_errors(self):
        assert main(["net", "compare", "--scenario", "no-such",
                     "--trials", "1"]) == 2
