"""Backend-equivalence suite for the :mod:`repro.kernels` layer.

Every Viterbi backend (blocked NumPy, per-step reference, numba JIT when
installed) must produce bit-identical output to the pure-Python scalar
oracle — including on ties.  Strict equality is asserted on
exact-arithmetic inputs (integer-scaled LLRs, hard decisions, erasures),
per the exactness contract in :mod:`repro.kernels.dispatch`; generic
float behaviour is pinned end-to-end by CRC-verified golden packets on
all eight 802.11a rates, with and without erasure masks.

The demap / scramble / energy kernels are shared by all backends, so
they are checked once against their scalar oracles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import IndoorChannel
from repro.cos.energy import EnergyDetector
from repro.cos.evd import ErasureViterbiDecoder
from repro.kernels import (
    available_backends,
    decode_many,
    prbs_sequence,
    prbs_state_table,
    silence_energies,
    silence_mask,
    use_backend,
    warmup,
)
from repro.kernels import cext, dispatch
from repro.kernels.numba_backend import HAVE_NUMBA
from repro.kernels.oracle import (
    demap_hard_oracle,
    scramble_oracle,
    viterbi_decode_oracle,
)
from repro.kernels.tables import MAX_BLOCK
from repro.kernels.viterbi_numpy import decode_blocked, decode_reference
from repro.phy import RATE_TABLE, Receiver, Transmitter, build_mpdu
from repro.phy.convcode import conv_encode
from repro.phy.modulation import MODULATIONS
from repro.phy.params import N_DATA_SUBCARRIERS
from repro.phy.scrambler import (
    Scrambler,
    scrambler_sequence,
    scrambler_sequence_reference,
)
from repro.phy.viterbi import ViterbiDecoder, hard_bits_to_llrs

needs_numba = pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
needs_cc = pytest.mark.skipif(
    not cext.compiler_available(), reason="no C compiler on PATH"
)

BACKENDS = [
    "numpy",
    "reference",
    pytest.param("numba", marks=needs_numba),
    pytest.param("cext", marks=needs_cc),
]


def _integer_llrs(rng, n_info: int, erasure_frac: float = 0.25) -> np.ndarray:
    """Exact-arithmetic LLR battery: integer scales + zeroed erasures.

    Integer-valued LLRs keep every partial path metric integral, so the
    exactness contract guarantees identical output (ties included) from
    every backend regardless of summation order.
    """
    info = rng.integers(0, 2, n_info, dtype=np.uint8)
    coded = conv_encode(np.concatenate([info, np.zeros(6, dtype=np.uint8)]))
    llrs = hard_bits_to_llrs(coded).astype(np.float64)
    llrs *= rng.integers(0, 4, llrs.size)  # scale 0 doubles as an erasure
    erase = rng.random(llrs.size) < erasure_frac
    llrs[erase] = 0.0
    return llrs


# ---------------------------------------------------------------------------
# Viterbi: every backend vs the scalar oracle
# ---------------------------------------------------------------------------


class TestViterbiBackendsVsOracle:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n_info", [1, 3, 17, 120])
    def test_integer_llr_battery(self, rng, backend, n_info):
        for _ in range(5):
            llrs = _integer_llrs(rng, n_info)
            expected = viterbi_decode_oracle(llrs)
            with use_backend(backend) as be:
                got = be.viterbi_decode(llrs, True)
            assert np.array_equal(got, expected), backend

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_erasure_input(self, backend):
        """All metrics zero — ties at every single step must still agree."""
        llrs = np.zeros(2 * 50)
        expected = viterbi_decode_oracle(llrs)
        with use_backend(backend) as be:
            got = be.viterbi_decode(llrs, True)
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unterminated(self, rng, backend):
        info = rng.integers(0, 2, 90, dtype=np.uint8)
        llrs = hard_bits_to_llrs(conv_encode(info)).astype(np.float64)
        expected = viterbi_decode_oracle(llrs, terminated=False)
        with use_backend(backend) as be:
            got = be.viterbi_decode(llrs, False)
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_stream(self, backend):
        with use_backend(backend) as be:
            assert be.viterbi_decode(np.zeros(0), True).size == 0

    @pytest.mark.parametrize("block", range(1, MAX_BLOCK + 1))
    def test_every_block_size_matches_reference(self, rng, block):
        """Blocked ACS is exact for every fusion depth, incl. remainders."""
        for n_info in (1, 2, block, block + 1, 7 * block + 3, 100):
            llrs = _integer_llrs(rng, n_info)
            assert np.array_equal(
                decode_blocked(llrs, True, block=block),
                decode_reference(llrs, True),
            ), f"block={block} n_info={n_info}"

    def test_noisy_hard_decisions(self, rng):
        """Hard ±1 LLRs with channel errors: exact inputs, every backend."""
        info = rng.integers(0, 2, 200, dtype=np.uint8)
        coded = conv_encode(np.concatenate([info, np.zeros(6, dtype=np.uint8)]))
        corrupted = coded.copy()
        corrupted[::45] ^= 1
        llrs = hard_bits_to_llrs(corrupted).astype(np.float64)
        expected = viterbi_decode_oracle(llrs)
        for backend in available_backends():
            with use_backend(backend) as be:
                assert np.array_equal(be.viterbi_decode(llrs, True), expected)


class TestDecodeMany:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_equals_looped_decode(self, rng, backend):
        """Property: batched decode == looping the single-codeword kernel."""
        codewords = [
            _integer_llrs(rng, n) for n in (5, 40, 40, 7, 40, 128, 5)
        ]
        with use_backend(backend) as be:
            batched = decode_many(codewords)
            looped = [be.viterbi_decode(cw, True) for cw in codewords]
        assert len(batched) == len(looped)
        for got, expected in zip(batched, looped):
            assert np.array_equal(got, expected)

    def test_decoder_class_batch_entry_point(self, rng):
        codewords = [_integer_llrs(rng, n) for n in (12, 12, 30)]
        dec = ViterbiDecoder(terminated=True)
        batched = dec.decode_many(codewords)
        for got, cw in zip(batched, codewords):
            assert np.array_equal(got, dec.decode(cw))

    def test_empty_batch(self):
        assert decode_many([]) == []

    def test_rejects_odd_length(self):
        with pytest.raises(ValueError):
            decode_many([np.zeros(3)])

    @needs_numba
    def test_numba_batch_kernel_matches_oracle(self, rng):
        """The true JIT batch loop (equal lengths) against the oracle."""
        codewords = [_integer_llrs(rng, 64) for _ in range(6)]
        with use_backend("numba") as be:
            batched = be.viterbi_decode_batch(np.stack(codewords), True)
        for row, cw in zip(batched, codewords):
            assert np.array_equal(row, viterbi_decode_oracle(cw))


# ---------------------------------------------------------------------------
# Backend dispatch semantics
# ---------------------------------------------------------------------------


class TestDispatch:
    def test_available_backends_contains_core(self):
        names = available_backends()
        assert "numpy" in names and "reference" in names
        assert ("numba" in names) == HAVE_NUMBA
        assert ("cext" in names) == cext.compiler_available()

    def test_use_backend_restores_previous(self):
        before = dispatch.backend_name()
        with use_backend("reference") as be:
            assert be.name == "reference"
            assert dispatch.backend_name() == "reference"
        assert dispatch.backend_name() == before

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            dispatch.set_backend("fortran")
        # The failed request must not have clobbered the active backend.
        assert dispatch.backend_name() in available_backends()

    @pytest.mark.skipif(HAVE_NUMBA, reason="fallback only fires without numba")
    def test_numba_request_falls_back_to_numpy(self):
        before = dispatch.backend_name()
        try:
            assert dispatch.set_backend("numba").name == "numpy"
        finally:
            dispatch.set_backend(before)

    def test_env_flag_resolution(self, monkeypatch):
        before = dispatch.backend_name()
        try:
            monkeypatch.setenv(dispatch.ENV_FLAG, "reference")
            assert dispatch.set_backend(None).name == "reference"
            monkeypatch.setenv(dispatch.ENV_FLAG, "auto")
            expected = next(
                n for n in dispatch._AUTO_ORDER if n in available_backends()
            )
            assert dispatch.set_backend(None).name == expected
        finally:
            dispatch.set_backend(before)

    def test_block_env_flag_out_of_range(self, monkeypatch):
        monkeypatch.setenv(dispatch.BLOCK_FLAG, "9")
        with use_backend("numpy") as be:
            with pytest.raises(ValueError, match=dispatch.BLOCK_FLAG):
                be.viterbi_decode(np.zeros(4), True)

    def test_warmup_is_idempotent_and_names_backend(self):
        assert warmup() == dispatch.backend_name()
        assert warmup() == dispatch.backend_name()


# ---------------------------------------------------------------------------
# Scramble kernel vs bit-loop oracle
# ---------------------------------------------------------------------------


class TestScrambleKernel:
    @pytest.mark.parametrize("n", [0, 1, 7, 126, 127, 128, 255, 1000])
    @pytest.mark.parametrize("state", [0b1111111, 0b1011101, 1, 64])
    def test_sequence_matches_reference(self, n, state):
        assert np.array_equal(
            scrambler_sequence(n, state), scrambler_sequence_reference(n, state)
        )

    def test_scramble_matches_oracle(self, rng):
        bits = rng.integers(0, 2, 733, dtype=np.uint8)
        for state in (0b1011101, 0b0000001, 0b1111111):
            got = Scrambler(state).scramble(bits)
            assert np.array_equal(got, scramble_oracle(bits, state))

    def test_state_table_rows_are_prbs_prefixes(self):
        table = prbs_state_table()
        assert table.shape == (127, 7)
        for state in (1, 2, 87, 127):
            assert np.array_equal(table[state - 1], prbs_sequence(7, state))

    def test_recover_state_roundtrip(self):
        for state in (1, 45, 93, 127):
            prefix = prbs_sequence(16, state)  # scrambled zero-bits = keystream
            assert Scrambler.recover_state(prefix[:7]) == state

    def test_sequence_period_is_127(self):
        seq = prbs_sequence(3 * 127, 0b1111111)
        assert np.array_equal(seq[:127], seq[127:254])
        assert np.array_equal(seq[:127], seq[254:])


# ---------------------------------------------------------------------------
# Demap kernel vs scalar oracle
# ---------------------------------------------------------------------------


class TestDemapKernel:
    @pytest.mark.parametrize("name", sorted(MODULATIONS))
    def test_hard_decisions_match_oracle(self, rng, name):
        mod = MODULATIONS[name]
        symbols = (rng.normal(size=256) + 1j * rng.normal(size=256)) * 0.8
        got = mod.demap_hard(symbols)
        expected = demap_hard_oracle(symbols, mod.pam_levels, name != "bpsk")
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("name", sorted(MODULATIONS))
    def test_map_demap_roundtrip(self, rng, name):
        mod = MODULATIONS[name]
        bits = rng.integers(0, 2, 96 * mod.bits_per_symbol, dtype=np.uint8)
        assert np.array_equal(mod.demap_hard(mod.map_bits(bits)), bits)

    @pytest.mark.parametrize("name", sorted(MODULATIONS))
    def test_soft_signs_agree_with_hard(self, rng, name):
        """Max-log LLR sign (positive ⇒ bit 0) must match the hard slicer."""
        mod = MODULATIONS[name]
        symbols = mod.map_bits(
            rng.integers(0, 2, 64 * mod.bits_per_symbol, dtype=np.uint8)
        ) + 0.05 * (rng.normal(size=64) + 1j * rng.normal(size=64))
        llrs = mod.demap_soft(symbols)
        hard = mod.demap_hard(symbols)
        decided = llrs != 0.0
        assert np.array_equal((llrs[decided] < 0), hard[decided].astype(bool))

    @pytest.mark.parametrize("name", sorted(MODULATIONS))
    def test_cached_tables_are_immutable(self, name):
        mod = MODULATIONS[name]
        for table in (mod.pam_levels, mod.constellation, mod._axis_bit_masks):
            with pytest.raises((ValueError, RuntimeError)):
                table[0] = 0


# ---------------------------------------------------------------------------
# Energy kernel vs naive computation
# ---------------------------------------------------------------------------


class TestEnergyKernel:
    def test_energies_match_naive(self, rng):
        grid = rng.normal(size=(12, N_DATA_SUBCARRIERS)) + 1j * rng.normal(
            size=(12, N_DATA_SUBCARRIERS)
        )
        control = np.array([0, 5, 17, 40], dtype=np.int64)
        got = silence_energies(grid, control)
        expected = np.abs(grid[:, control]) ** 2
        assert np.allclose(got, expected, rtol=0, atol=1e-12)

    def test_mask_scalar_and_per_subcarrier_thresholds(self, rng):
        energies = rng.exponential(size=(9, 4))
        assert np.array_equal(silence_mask(energies, 0.7), energies < 0.7)
        per_sc = np.array([0.1, 0.5, 1.0, 2.0])
        assert np.array_equal(silence_mask(energies, per_sc), energies < per_sc)

    def test_detector_end_to_end_equals_naive_loop(self, rng):
        grid = 0.2 * (
            rng.normal(size=(8, N_DATA_SUBCARRIERS))
            + 1j * rng.normal(size=(8, N_DATA_SUBCARRIERS))
        )
        grid[3, 10] = 0.001  # a clear silence cell
        control = [4, 10, 23]
        det = EnergyDetector(margin_db=7.0, adaptive=False)
        report = det.detect(grid, control, noise_var=0.01)
        naive = np.zeros(grid.shape, dtype=bool)
        for t in range(grid.shape[0]):
            for c in control:
                naive[t, c] = abs(grid[t, c]) ** 2 < report.threshold
        assert np.array_equal(report.mask, naive)
        assert report.mask[3, 10]


# ---------------------------------------------------------------------------
# CRC-verified golden packets: all 8 rates x backends x {plain, erasures}
# ---------------------------------------------------------------------------

_GOLDEN_PAYLOAD = bytes(range(120))
_GOLDEN_CACHE: dict = {}


def _golden_observation(mbps: int):
    """One high-SNR received packet per rate, observed once and shared."""
    if mbps not in _GOLDEN_CACHE:
        rate = RATE_TABLE[mbps]
        channel = IndoorChannel.position("C", snr_db=30.0, seed=3 + mbps)
        frame = Transmitter().transmit(build_mpdu(_GOLDEN_PAYLOAD), rate)
        rx = Receiver()
        obs = rx.observe(channel.transmit(frame.waveform))
        assert obs is not None and obs.signal is not None
        _GOLDEN_CACHE[mbps] = (rx, obs)
    return _GOLDEN_CACHE[mbps]


class TestGoldenPackets:
    @pytest.mark.parametrize("mbps", sorted(RATE_TABLE))
    @pytest.mark.parametrize("with_erasures", [False, True])
    def test_all_rates_crc_ok_and_backends_agree(self, mbps, with_erasures):
        rx, obs = _golden_observation(mbps)
        mask = None
        if with_erasures:
            n_symbols = obs.signal.n_data_symbols
            mask = np.zeros((n_symbols, N_DATA_SUBCARRIERS), dtype=bool)
            # Erase two full control subcarriers on alternating symbols —
            # well inside what EVD absorbs at 30 dB SNR.
            mask[::2, 11] = True
            mask[1::2, 35] = True
        psdus = {}
        for backend in available_backends():
            with use_backend(backend):
                result = rx.decode(obs, erasure_mask=mask)
            assert result.ok, f"{backend}: CRC failed at {mbps} Mbps"
            assert result.mpdu.payload == _GOLDEN_PAYLOAD
            psdus[backend] = bytes(result.decoded.psdu)
        reference = psdus.pop("reference")
        for backend, psdu in psdus.items():
            assert psdu == reference, f"{backend} != reference at {mbps} Mbps"

    def test_evd_decoder_backends_agree(self, rng):
        """ErasureViterbiDecoder batch path recovers the true bits everywhere.

        The grids carry *valid* codewords (encode → interleave → map), so
        the ML path has a decisive margin and every backend must land on
        the same — correct — information bits, erasures and all.
        """
        from repro.phy.convcode import puncture
        from repro.phy.interleaver import interleave

        rate = RATE_TABLE[24]  # 16-QAM, rate 1/2
        dec = ErasureViterbiDecoder(rate)
        mod = MODULATIONS[rate.modulation]
        n_symbols = 6
        n_cbps = N_DATA_SUBCARRIERS * mod.bits_per_symbol
        n_info = n_symbols * n_cbps // 2  # rate-1/2: half the coded bits
        grids, masks, truths = [], [], []
        for i in range(3):
            info = np.concatenate(
                [rng.integers(0, 2, n_info - 6, dtype=np.uint8),
                 np.zeros(6, dtype=np.uint8)]
            )
            coded = puncture(conv_encode(info), rate.code_rate)
            grid = mod.map_bits(interleave(coded, rate)).reshape(
                n_symbols, N_DATA_SUBCARRIERS
            )
            mask = np.zeros((n_symbols, N_DATA_SUBCARRIERS), dtype=bool)
            mask[i % n_symbols, ::7] = True
            grids.append(grid)
            masks.append(mask)
            truths.append(info)
        for backend in available_backends():
            with use_backend(backend):
                rows = dec.decode_many(grids, erasure_masks=masks)
            for got, expected in zip(rows, truths):
                assert np.array_equal(got, expected), backend
