"""Tests for building the control-rate table from capacity measurements."""

from dataclasses import dataclass

import pytest

from repro.cos.rate_control import ControlRateController, ControlRateTable


@dataclass
class _Point:
    measured_snr_db: float
    rate_mbps: int
    rm_per_sec: float


class TestFromMeasurements:
    def test_single_band_calibration(self):
        points = [
            _Point(12.3, 24, 50_000.0),
            _Point(17.0, 24, 90_000.0),
        ]
        table = ControlRateTable.from_measurements(points)
        assert table.rm_for(12.0) == pytest.approx(50_000.0)
        assert table.rm_for(17.25) == pytest.approx(90_000.0, rel=0.05)

    def test_other_bands_keep_defaults(self):
        points = [_Point(12.3, 24, 50_000.0)]
        table = ControlRateTable.from_measurements(points)
        default = ControlRateTable()
        assert table.rm_for(8.0) == default.rm_for(8.0)

    def test_single_point_band_flat(self):
        points = [_Point(14.0, 24, 64_000.0)]
        table = ControlRateTable.from_measurements(points)
        assert table.rm_for(12.1) == pytest.approx(64_000.0)
        assert table.rm_for(17.2) == pytest.approx(64_000.0)

    def test_non_monotone_measurement_clamped(self):
        """A noisy high-SNR point below the low one must not invert."""
        points = [
            _Point(12.3, 24, 80_000.0),
            _Point(17.0, 24, 60_000.0),
        ]
        table = ControlRateTable.from_measurements(points)
        assert table.rm_for(17.2) >= table.rm_for(12.1)

    def test_calibrated_table_drives_controller(self):
        points = [_Point(12.5, 24, 10_000.0), _Point(17.0, 24, 20_000.0)]
        table = ControlRateTable.from_measurements(points)
        controller = ControlRateController(table=table)
        default_ctrl = ControlRateController()
        assert (
            controller.allocation(15.0, 60).target_silences
            < default_ctrl.allocation(15.0, 60).target_silences
        )

    def test_roundtrip_with_fig9_result_type(self):
        from repro.experiments.fig9 import CapacityPoint, CapacityResult

        result = CapacityResult(
            points=[
                CapacityPoint(12.3, 24, 55_000.0, 220.0, 1.0),
                CapacityPoint(16.9, 24, 95_000.0, 380.0, 1.0),
            ]
        )
        table = ControlRateTable.from_measurements(result.points)
        assert table.rm_for(12.1) == pytest.approx(55_000.0, rel=0.05)
