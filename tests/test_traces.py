"""Unit tests for channel trace record/replay."""

import numpy as np
import pytest

from repro.channel.multipath import TappedDelayLine
from repro.channel.temporal import GaussMarkovEvolution
from repro.channel.traces import ChannelTrace, ReplayChannelSequence, TraceRecorder


class TestRecorder:
    def test_record_and_finish(self, rng):
        tdl = TappedDelayLine.from_profile(3, 1.0, rng)
        recorder = TraceRecorder()
        evo = GaussMarkovEvolution(tdl=tdl, rng=rng)
        recorder.snapshot(tdl)
        for _ in range(4):
            evo.advance(0.01)
            recorder.snapshot(tdl, elapsed_s=0.01)
        trace = recorder.finish()
        assert trace.n_steps == 5
        assert trace.timestamps_s[-1] == pytest.approx(0.04)

    def test_snapshots_are_copies(self, rng):
        tdl = TappedDelayLine.from_profile(2, 1.0, rng)
        recorder = TraceRecorder()
        recorder.snapshot(tdl)
        tdl.taps[:] = 0.0
        trace = recorder.finish()
        assert not np.allclose(trace.taps[0], 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder().finish()

    def test_negative_elapsed_rejected(self, rng):
        recorder = TraceRecorder()
        with pytest.raises(ValueError):
            recorder.snapshot(TappedDelayLine.identity(), elapsed_s=-1.0)


class TestTraceValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ChannelTrace(taps=np.zeros((3, 2), dtype=complex), timestamps_s=np.zeros(2))

    def test_non_monotone_rejected(self):
        with pytest.raises(ValueError):
            ChannelTrace(
                taps=np.zeros((2, 2), dtype=complex),
                timestamps_s=np.array([1.0, 0.5]),
            )


class TestSaveLoad:
    def test_roundtrip(self, tmp_path, rng):
        taps = rng.standard_normal((5, 3)) + 1j * rng.standard_normal((5, 3))
        trace = ChannelTrace(taps=taps, timestamps_s=np.arange(5) * 0.01)
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = ChannelTrace.load(path)
        assert np.allclose(loaded.taps, taps)
        assert np.allclose(loaded.timestamps_s, trace.timestamps_s)


class TestReplay:
    def test_replay_order_and_exhaustion(self, rng):
        taps = rng.standard_normal((3, 2)) + 0j
        trace = ChannelTrace(taps=taps, timestamps_s=np.arange(3) * 1.0)
        replay = ReplayChannelSequence(trace)
        seen = [replay.next_channel().taps for _ in range(3)]
        assert all(np.allclose(s, t) for s, t in zip(seen, taps))
        assert replay.exhausted
        with pytest.raises(StopIteration):
            replay.next_channel()

    def test_rewind(self, rng):
        trace = ChannelTrace(
            taps=rng.standard_normal((2, 2)) + 0j, timestamps_s=np.arange(2) * 1.0
        )
        replay = ReplayChannelSequence(trace)
        first = replay.next_channel().taps
        replay.rewind()
        assert np.allclose(replay.next_channel().taps, first)

    def test_identical_experiments_on_replay(self, tmp_path, rng):
        """Two experiment runs over the same trace see identical channels."""
        tdl = TappedDelayLine.from_profile(3, 0.8, rng)
        recorder = TraceRecorder()
        evo = GaussMarkovEvolution(tdl=tdl, rng=rng)
        for _ in range(6):
            recorder.snapshot(tdl, elapsed_s=0.005)
            evo.advance(0.005)
        trace = recorder.finish()
        path = tmp_path / "t.npz"
        trace.save(path)

        def frequency_fingerprint():
            replay = ReplayChannelSequence(ChannelTrace.load(path))
            return [
                np.abs(replay.next_channel().frequency_response()).sum()
                for _ in range(6)
            ]

        assert frequency_fingerprint() == frequency_fingerprint()
