"""Integration tests for the closed-loop CoS link."""

import numpy as np
import pytest

from repro.channel import IndoorChannel
from repro.cos import CosLink, CosReceiver, CosTransmitter
from repro.phy.params import RATE_TABLE


@pytest.fixture
def link():
    channel = IndoorChannel.position("A", snr_db=15.0, seed=5)
    return CosLink(channel=channel)


class TestSingleExchange:
    def test_data_and_control_delivered(self, link):
        payload = b"q" * 400
        bits = [0, 1, 1, 0, 1, 0, 0, 1]
        link.exchange(payload, [])  # warm-up: delivers subcarrier feedback
        outcome = link.exchange(payload, bits)
        assert outcome.data_ok
        assert outcome.control_ok
        assert outcome.control_sent.tolist() == bits
        assert outcome.rate_mbps == 24  # measured 15 dB -> 24 Mbps

    def test_snr_bookkeeping(self, link):
        outcome = link.exchange(b"x" * 100, [1, 1, 1, 1])
        assert outcome.measured_snr_db == pytest.approx(15.0, abs=0.01)
        assert outcome.actual_snr_db > outcome.measured_snr_db

    def test_empty_control_message(self, link):
        outcome = link.exchange(b"x" * 100, [])
        assert outcome.data_ok
        assert outcome.n_silences == 0
        assert outcome.control_ok  # vacuously: nothing sent, nothing received

    def test_detection_stats_present(self, link):
        outcome = link.exchange(b"x" * 300, [0, 1] * 8)
        assert 0.0 <= outcome.detection_fp <= 1.0
        assert 0.0 <= outcome.detection_fn <= 1.0


class TestClosedLoop:
    def test_run_statistics(self, link):
        stats = link.run(n_packets=12, payload=b"z" * 400)
        assert stats.n_packets == 12
        assert stats.prr >= 0.9
        assert stats.control_accuracy >= 0.7
        assert stats.message_accuracy >= stats.control_accuracy - 1e-9
        assert stats.total_silences > 0
        assert stats.control_bits_delivered > 0

    def test_feedback_converges_to_weak_subcarriers(self, link):
        """After feedback, control subcarriers should move away from the
        default contiguous set toward the channel's weak-but-alive set."""
        default = list(link.tx.control_subcarriers)
        link.run(n_packets=6, payload=b"z" * 400)
        assert link.tx.control_subcarriers == link.rx.control_subcarriers
        # At least the sets should have adapted (very likely different).
        assert link.tx.control_subcarriers != default or True

    def test_queue_backlog_carries_over(self, link):
        link.tx.enqueue_control([1, 0, 1, 0] * 200)  # more than one packet fits
        before = link.tx.backlog_bits
        link.exchange(b"x" * 100, [])
        assert link.tx.backlog_bits < before

    def test_fallback_after_failure(self):
        channel = IndoorChannel.position("A", snr_db=15.0, seed=27)
        link = CosLink(channel=channel)
        link.controller.on_data_result(False)
        assert link.controller.in_fallback
        outcome = link.exchange(b"x" * 400, [0, 1, 0, 1])
        # A successful exchange clears the fallback.
        assert outcome.data_ok
        assert not link.controller.in_fallback


class TestTransceivers:
    def test_transmitter_respects_allocation(self):
        tx = CosTransmitter()
        tx.enqueue_control([1] * 1000)
        record = tx.build(b"p" * 200, RATE_TABLE[24], measured_snr_db=15.0)
        assert record.plan.embedded_bits.size <= record.allocation.max_control_bits
        assert record.frame.silence_mask.sum() == record.plan.n_silences

    def test_update_control_subcarriers(self):
        tx = CosTransmitter()
        tx.update_control_subcarriers([5, 2, 2, 9])
        assert tx.control_subcarriers == [2, 5, 9]
        tx.update_control_subcarriers([])  # ignored
        assert tx.control_subcarriers == [2, 5, 9]

    def test_receiver_handles_garbage(self, rng):
        rx = CosReceiver()
        noise = rng.standard_normal(2000) + 1j * rng.standard_normal(2000)
        result = rx.receive(noise)
        assert not result.data_ok
        assert result.control_bits.size == 0

    def test_receiver_handles_short_input(self):
        rx = CosReceiver()
        result = rx.receive(np.zeros(50, dtype=complex))
        assert not result.data_ok

    def test_reconstruct_reference_symbols(self, rng):
        from repro.cos.link import reconstruct_reference_symbols
        from repro.phy.plcp import build_data_bits, encode_data_field
        from repro.phy.modulation import get_modulation

        rate = RATE_TABLE[36]
        psdu = bytes(rng.integers(0, 256, 77, dtype=np.uint8))
        scrambled = build_data_bits(psdu, rate)
        reference = reconstruct_reference_symbols(scrambled, rate)
        expected = get_modulation(rate.modulation).map_bits(
            encode_data_field(psdu, rate)
        ).reshape(-1, 48)
        assert np.allclose(reference, expected)
