"""Tests for the markdown report generator."""

from pathlib import Path

import pytest

from repro.analysis.report import generate_report, write_report


class TestGenerateReport:
    def test_subset_contains_only_requested(self):
        report = generate_report(stages=["fig2"])
        assert "Fig. 2" in report
        assert "Fig. 3" not in report
        assert "```" in report

    def test_header_mentions_scale(self):
        report = generate_report(stages=["fig2"])
        assert "quick scale" in report

    def test_full_mode_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        # Don't actually run a full-scale stage; empty subset still renders.
        report = generate_report(stages=[])
        assert "paper scale" in report

    def test_empty_stage_list(self):
        report = generate_report(stages=[])
        assert report.startswith("# CoS reproduction")


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = write_report(tmp_path / "out.md", stages=["fig2"])
        assert Path(path).exists()
        assert "Fig. 2" in Path(path).read_text()

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "cli.md"
        assert main(["report", str(target), "--stages", "fig2"]) == 0
        assert target.exists()
