"""Tests for the network-level comparison experiment and the runner."""

import pytest

from repro.experiments import network
from repro.experiments.runner import main as runner_main


class TestNetworkExperiment:
    def test_cos_never_loses_goodput(self):
        result = network.run(station_counts=[2, 6])
        assert result.cos_never_loses_goodput()
        assert result.goodput_violations() == []

    def test_explicit_pays_airtime(self):
        result = network.run(station_counts=[4])
        assert result.explicit_control_airtime() > 0.02
        assert result.cos[0].control_airtime_fraction == 0.0

    def test_lower_delivery_prob_costs_latency(self):
        good = network.run(station_counts=[4], cos_delivery_prob=0.99)
        bad = network.run(station_counts=[4], cos_delivery_prob=0.6)
        assert (
            bad.cos[0].mean_control_latency_us
            > good.cos[0].mean_control_latency_us
        )

    def test_print_result(self, capsys):
        result = network.run(station_counts=[2])
        network.print_result(result)
        out = capsys.readouterr().out
        assert "Network comparison" in out
        assert "FAIL" not in out

    def test_print_result_names_failing_station_count(self, capsys):
        from types import SimpleNamespace

        fake = lambda mbps: SimpleNamespace(
            goodput_mbps=mbps,
            control_airtime_fraction=0.0,
            mean_control_latency_us=0.0,
        )
        result = network.NetworkComparisonResult(
            station_counts=[3],
            explicit=[fake(10.0)],
            cos=[fake(5.0)],  # CoS clearly loses
        )
        assert not result.cos_never_loses_goodput()
        network.print_result(result)
        out = capsys.readouterr().out
        assert "FAIL: CoS loses goodput at 3 stations" in out

    def test_relative_tolerance_is_named_and_relative(self):
        from types import SimpleNamespace

        fake = lambda mbps: SimpleNamespace(goodput_mbps=mbps)
        # A shortfall inside the relative tolerance is not a violation.
        within = 10.0 * (1.0 - network.GOODPUT_REL_TOL / 2)
        result = network.NetworkComparisonResult(
            station_counts=[4], explicit=[fake(10.0)], cos=[fake(within)]
        )
        assert result.cos_never_loses_goodput()

    def test_payload_and_rate_are_threaded(self):
        small = network.run(station_counts=[2], payload_octets=256,
                            packets_per_station=20)
        large = network.run(station_counts=[2], payload_octets=2048,
                            packets_per_station=20)
        # Larger payloads amortise MAC overhead: higher goodput.
        assert (
            large.cos[0].goodput_mbps > small.cos[0].goodput_mbps
        )
        slow = network.run(station_counts=[2], data_rate_mbps=6,
                           packets_per_station=20)
        fast = network.run(station_counts=[2], data_rate_mbps=54,
                           packets_per_station=20)
        # At a higher data rate the (base-rate) control frames make up a
        # larger share of the busy airtime.
        assert (
            fast.explicit[0].control_airtime_fraction
            > slow.explicit[0].control_airtime_fraction
        )

    def test_net_backend(self):
        result = network.run(station_counts=[2], backend="net",
                             packets_per_station=20)
        assert result.backend == "net"
        assert result.cos_never_loses_goodput()
        assert result.explicit_control_airtime() > 0.02
        assert result.cos[0].control_airtime_fraction == 0.0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            network.run(station_counts=[2], backend="warp")


class TestRunner:
    def test_runner_subset(self, capsys):
        assert runner_main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "Fig. 3" not in out

    def test_runner_network_stage(self, capsys):
        assert runner_main(["network"]) == 0
        out = capsys.readouterr().out
        assert "Network comparison" in out

    def test_unknown_stage_is_noop(self, capsys):
        assert runner_main(["not-a-stage"]) == 0
        assert "Fig." not in capsys.readouterr().out
