"""Tests for the network-level comparison experiment and the runner."""

import pytest

from repro.experiments import network
from repro.experiments.runner import main as runner_main


class TestNetworkExperiment:
    def test_cos_never_loses_goodput(self):
        result = network.run(station_counts=[2, 6])
        assert result.cos_never_loses_goodput()

    def test_explicit_pays_airtime(self):
        result = network.run(station_counts=[4])
        assert result.explicit_control_airtime() > 0.02
        assert result.cos[0].control_airtime_fraction == 0.0

    def test_lower_delivery_prob_costs_latency(self):
        good = network.run(station_counts=[4], cos_delivery_prob=0.99)
        bad = network.run(station_counts=[4], cos_delivery_prob=0.6)
        assert (
            bad.cos[0].mean_control_latency_us
            > good.cos[0].mean_control_latency_us
        )

    def test_print_result(self, capsys):
        result = network.run(station_counts=[2])
        network.print_result(result)
        out = capsys.readouterr().out
        assert "Network comparison" in out


class TestRunner:
    def test_runner_subset(self, capsys):
        assert runner_main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "Fig. 3" not in out

    def test_runner_network_stage(self, capsys):
        assert runner_main(["network"]) == 0
        out = capsys.readouterr().out
        assert "Network comparison" in out

    def test_unknown_stage_is_noop(self, capsys):
        assert runner_main(["not-a-stage"]) == 0
        assert "Fig." not in capsys.readouterr().out
