"""Batched receive path + PRR surrogate tables.

The tentpole contract of the batch PHY: ``Receiver.receive_many`` is
**bit-for-bit** equal to looping :meth:`Receiver.receive` — same soft
metrics, same channel/noise estimates, same PSDUs, same CRC outcomes —
across every 802.11a rate, both decision modes, and erasure-mask
batches.  Batching is a scheduling change, never a numerical one.

On top of that path sit the surrogate tables: real-PHY PRR sweeps,
monotone-fitted and serialised.  Their contract is measured-value
replay — on the grid, the table returns exactly what re-running the
measurement returns, and the CoS curve is bit-compatible with
``cos_fidelity="phy"``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.channel import IndoorChannel
from repro.engine import make_specs, run_batched_trials, run_trials
from repro.kernels.interleave import (
    deinterleave_rx_numpy,
    deinterleave_rx_oracle,
)
from repro.phy import RATE_TABLE, Receiver, Transmitter, build_mpdu
from repro.phy.preamble import (
    estimate_channel,
    estimate_channel_batch,
    estimate_noise_from_ltf,
    estimate_noise_from_ltf_batch,
)
from repro.phy.receiver import _as_waveform_batch
from repro.phy.surrogate import (
    TABLE_VERSION,
    SurrogateSpec,
    SurrogateTable,
    load_default_table,
    monotone_fit,
)

ALL_RATES = sorted(RATE_TABLE)


# ---------------------------------------------------------------------------
# Bit-for-bit equivalence: receive_many == looped receive
# ---------------------------------------------------------------------------


def _make_batch(mbps, snr_db, n_pkts, seed, mask_frac=0.0):
    """Transmit ``n_pkts`` same-spec packets over an evolving channel."""
    rate = RATE_TABLE[mbps]
    rng = np.random.default_rng(seed + mbps)
    tx = Transmitter()
    psdu = build_mpdu(bytes(rng.integers(0, 256, 60, dtype=np.uint8)))
    n_sym = tx.n_data_symbols_for(len(psdu), rate)
    channel = IndoorChannel.position("A", snr_db=snr_db, seed=seed + mbps)
    waves, masks = [], []
    for _ in range(n_pkts):
        channel.evolve(1e-3)
        mask = rng.random((n_sym, 48)) < mask_frac if mask_frac else None
        frame = tx.transmit(psdu, rate, silence_mask=mask)
        waves.append(channel.transmit(frame.waveform))
        masks.append(mask)
    return waves, masks


def _assert_results_identical(single, batched, tag):
    assert (single.signal is None) == (batched.signal is None), tag
    if single.signal is not None:
        assert single.signal == batched.signal, tag
    assert (single.observation is None) == (batched.observation is None), tag
    if single.observation is not None:
        so, bo = single.observation, batched.observation
        assert np.array_equal(so.h_est, bo.h_est), (tag, "h_est")
        assert np.array_equal(so.h_data, bo.h_data), (tag, "h_data")
        assert so.noise_var == bo.noise_var, (tag, "noise_var")
        assert np.array_equal(so.raw_data_grid, bo.raw_data_grid), (tag, "raw")
        assert np.array_equal(so.eq_data_grid, bo.eq_data_grid), (tag, "eq")
    assert single.ok == batched.ok, (tag, "fcs")
    assert single.mpdu.payload == batched.mpdu.payload, (tag, "payload")
    if single.pre_viterbi_bits is None:
        assert batched.pre_viterbi_bits is None, tag
    else:
        assert np.array_equal(single.pre_viterbi_bits,
                              batched.pre_viterbi_bits), (tag, "metrics")
    if single.decoded is None:
        assert batched.decoded is None, tag
    else:
        assert single.decoded.psdu == batched.decoded.psdu, (tag, "psdu")
        assert np.array_equal(single.decoded.descrambled_bits,
                              batched.decoded.descrambled_bits), tag
        assert np.array_equal(single.decoded.scrambled_bits,
                              batched.decoded.scrambled_bits), tag


@pytest.mark.parametrize("decision", ["soft", "hard"])
@pytest.mark.parametrize("mbps", ALL_RATES)
def test_receive_many_matches_looped_receive(mbps, decision):
    """All 8 rates x both decisions, clean and erased, mid and low SNR."""
    rx = Receiver(decision=decision)
    for snr_db, mask_frac, seed in (
        (14.0, 0.0, 0),  # working region, no erasures
        (8.0, 0.08, 100),  # near threshold, per-packet erasure masks
    ):
        waves, masks = _make_batch(mbps, snr_db, n_pkts=3, seed=seed,
                                   mask_frac=mask_frac)
        singles = [rx.receive(w, m) for w, m in zip(waves, masks)]
        batched = rx.receive_many(np.stack(waves), masks)
        assert len(batched) == len(singles)
        for i, (s, b) in enumerate(zip(singles, batched)):
            _assert_results_identical(s, b, (mbps, decision, snr_db, i))


def test_receive_many_low_snr_failed_decodes():
    """Below the waterfall the batch path fails identically, too."""
    rx = Receiver()
    waves, masks = _make_batch(54, snr_db=3.0, n_pkts=4, seed=200)
    singles = [rx.receive(w) for w in waves]
    batched = rx.receive_many(np.stack(waves))
    assert any(not s.ok for s in singles)  # the point of this SNR
    for i, (s, b) in enumerate(zip(singles, batched)):
        _assert_results_identical(s, b, ("lowsnr", i))


def test_receive_many_batch_of_one():
    rx = Receiver()
    waves, _ = _make_batch(24, snr_db=16.0, n_pkts=1, seed=7)
    single = rx.receive(waves[0])
    (batched,) = rx.receive_many(waves)
    _assert_results_identical(single, batched, ("batch1",))


def test_observe_many_matches_observe():
    rx = Receiver()
    waves, _ = _make_batch(12, snr_db=12.0, n_pkts=3, seed=3)
    singles = [rx.observe(w) for w in waves]
    batched = rx.observe_many(np.stack(waves))
    for s, b in zip(singles, batched):
        assert s.signal == b.signal
        assert np.array_equal(s.h_est, b.h_est)
        assert s.noise_var == b.noise_var
        assert np.array_equal(s.raw_data_grid, b.raw_data_grid)


def test_waveform_batch_rejects_ragged_and_non_1d():
    waves, _ = _make_batch(6, snr_db=20.0, n_pkts=2, seed=1)
    with pytest.raises(ValueError):
        _as_waveform_batch([waves[0], waves[1][:-80]])
    with pytest.raises(ValueError):
        _as_waveform_batch(np.zeros((2, 3, 400), dtype=np.complex128))
    stacked = _as_waveform_batch(waves)
    assert stacked.shape == (2, waves[0].size)
    assert np.array_equal(stacked[0], waves[0])


# ---------------------------------------------------------------------------
# Batched estimators and the gather kernel
# ---------------------------------------------------------------------------


def test_batched_preamble_estimators_match_scalar():
    waves, _ = _make_batch(24, snr_db=10.0, n_pkts=4, seed=11)
    preambles = np.stack(waves)
    h_batch = estimate_channel_batch(preambles)
    noise_batch = estimate_noise_from_ltf_batch(preambles)
    for i, wave in enumerate(waves):
        assert np.array_equal(h_batch[i], estimate_channel(wave))
        assert noise_batch[i] == estimate_noise_from_ltf(wave)


@pytest.mark.parametrize("mbps", ALL_RATES)
def test_deinterleave_rx_numpy_matches_oracle(mbps):
    rate = RATE_TABLE[mbps]
    rng = np.random.default_rng(mbps)
    values = rng.normal(size=3 * rate.n_cbps)
    args = (rate.n_cbps, rate.n_bpsc, rate.code_rate)
    expected = deinterleave_rx_oracle(values, *args)
    assert np.array_equal(deinterleave_rx_numpy(values, *args), expected)
    # Any leading batch shape produces the same per-row output.
    batch = np.stack([values, values[::-1].copy()])
    out = deinterleave_rx_numpy(batch, *args)
    assert np.array_equal(out[0], expected)
    assert np.array_equal(
        out[1], deinterleave_rx_oracle(values[::-1].copy(), *args)
    )


def test_deinterleave_rx_rejects_partial_blocks():
    rate = RATE_TABLE[6]
    with pytest.raises(ValueError):
        deinterleave_rx_numpy(np.zeros(rate.n_cbps + 1), rate.n_cbps,
                              rate.n_bpsc, rate.code_rate)


# ---------------------------------------------------------------------------
# Engine: batched trial runner
# ---------------------------------------------------------------------------


def _trial(spec):
    return (spec.params["x"], float(spec.rng().random()))


def _batch(specs):
    return [_trial(s) for s in specs]


def test_run_batched_trials_matches_run_trials():
    params = [{"x": x} for x in (1, 1, 1, 2, 2, 1)]  # consecutive groups
    flat = run_trials(make_specs(params, seed=42), _trial)
    batched = run_batched_trials(make_specs(params, seed=42), _batch)
    assert batched == flat  # bit-for-bit, order preserved


def test_run_batched_trials_respects_max_batch():
    seen = []

    def counting_batch(specs):
        seen.append(len(specs))
        return [_trial(s) for s in specs]

    params = [{"x": 1}] * 7
    out = run_batched_trials(
        make_specs(params, seed=0), counting_batch, max_batch=3
    )
    assert len(out) == 7
    assert seen == [3, 3, 1]


# ---------------------------------------------------------------------------
# Operating-point probe (the surrogate's measurement primitive)
# ---------------------------------------------------------------------------


def test_measure_operating_point_deterministic_and_sane():
    from repro.cos.link import measure_operating_point

    rate = RATE_TABLE[12]
    points = [
        measure_operating_point(
            IndoorChannel.position("A", snr_db=18.0, seed=2), rate, 6
        )
        for _ in range(2)
    ]
    assert points[0] == points[1]  # pure in its arguments
    assert points[0].n_packets == 6
    assert points[0].prr == 1.0  # well inside the working region


def test_measure_operating_point_with_control_bits():
    from repro.cos.link import measure_operating_point

    point = measure_operating_point(
        IndoorChannel.position("A", snr_db=22.0, seed=4),
        RATE_TABLE[24], 4, control_bits_per_packet=8,
    )
    assert point.n_control_packets == 4
    assert point.prr == 1.0
    assert point.message_accuracy >= 0.5


# ---------------------------------------------------------------------------
# Surrogate tables
# ---------------------------------------------------------------------------

TINY_SPEC = SurrogateSpec(
    channel_seeds=(0,),
    n_packets=4,
    sinr_min_db=6.0,
    sinr_max_db=14.0,
    sinr_step_db=4.0,
    rates_mbps=(6, 24),
    cos_n_packets=2,
)


@pytest.fixture(scope="module")
def tiny_table():
    from repro.phy.surrogate import build_surrogate_table

    return build_surrogate_table(TINY_SPEC)


def test_monotone_fit_is_pava():
    raw = np.array([0.0, 0.4, 0.3, 0.3, 0.9, 0.8, 1.0])
    fit = monotone_fit(raw)
    assert np.all(np.diff(fit) >= 0.0)
    # PAVA pools violators to their mean; sorted input is untouched.
    assert np.allclose(fit[1:4], (0.4 + 0.3 + 0.3) / 3)
    clean = np.array([0.0, 0.25, 0.9, 1.0])
    assert np.array_equal(monotone_fit(clean), clean)


def test_tiny_table_shape_and_fit(tiny_table):
    assert sorted(tiny_table.prr_fit) == [6, 24]
    assert tiny_table.sinr_grid_db.tolist() == [6.0, 10.0, 14.0]
    for rate in (6, 24):
        fit = tiny_table.prr_fit[rate]
        assert np.all(np.diff(fit) >= 0.0)
        assert np.all((fit >= 0.0) & (fit <= 1.0))
    # The satellite tolerance: the monotone fit stays within 2 pp of the
    # raw measurements (PAVA pools, never extrapolates).
    assert tiny_table.max_fit_error() <= 0.02
    assert tiny_table.spec_hash == TINY_SPEC.spec_hash()


def test_tiny_table_replays_measurement(tiny_table):
    """Grid nodes replay the raw measurement bit-for-bit."""
    from repro.phy.surrogate import measure_cos_point, measure_prr_point

    prr = measure_prr_point("A", 10.0, 24, TINY_SPEC.n_packets,
                            TINY_SPEC.payload_octets, channel_seed=0)
    assert prr == tiny_table.prr_raw[24][1]
    cos = measure_cos_point("A", 10, TINY_SPEC.cos_seed,
                            TINY_SPEC.cos_n_packets)
    assert cos == tiny_table.cos_delivery_prob(10.0)


def test_table_json_round_trip(tiny_table, tmp_path):
    path = tmp_path / "table.json"
    tiny_table.save(path)
    loaded = SurrogateTable.load(path)
    assert loaded.spec == tiny_table.spec
    assert loaded.spec_hash == tiny_table.spec_hash
    assert np.array_equal(loaded.sinr_grid_db, tiny_table.sinr_grid_db)
    for rate in tiny_table.prr_fit:
        assert np.array_equal(loaded.prr_raw[rate], tiny_table.prr_raw[rate])
        assert np.array_equal(loaded.prr_fit[rate], tiny_table.prr_fit[rate])
    assert np.array_equal(loaded.cos_accuracy, tiny_table.cos_accuracy)


def test_table_rejects_bad_version_and_hash(tiny_table):
    data = tiny_table.to_dict()
    stale = dict(data, version=TABLE_VERSION + 1)
    with pytest.raises(ValueError, match="version"):
        SurrogateTable.from_dict(stale)
    forged = json.loads(json.dumps(data))
    forged["spec"]["n_packets"] = 999  # spec no longer matches its hash
    with pytest.raises(ValueError, match="hash mismatch"):
        SurrogateTable.from_dict(forged)


def test_table_lookup_semantics(tiny_table):
    t = tiny_table
    # PRR: linear interpolation between grid nodes, clamped outside.
    assert t.prr(6.0, 24) == t.prr_fit[24][0]
    mid = t.prr(8.0, 24)
    lo, hi = sorted((t.prr_fit[24][0], t.prr_fit[24][1]))
    assert lo <= mid <= hi
    assert t.prr(-50.0, 24) == t.prr_fit[24][0]
    assert t.prr(99.0, 24) == t.prr_fit[24][-1]
    with pytest.raises(KeyError, match="54"):
        t.prr(10.0, 54)
    # CoS: integer-dB rounding + clamping (the phy cache's key scheme).
    assert t.cos_delivery_prob(9.6) == t.cos_delivery_prob(10.0)
    assert t.cos_delivery_prob(-80.0) == float(t.cos_accuracy[0])
    assert t.cos_delivery_prob(80.0) == float(t.cos_accuracy[-1])


def test_default_table_committed_and_consistent():
    table = load_default_table()
    assert table.spec == SurrogateSpec()  # built from the default spec
    assert sorted(table.prr_fit) == ALL_RATES
    assert table.max_fit_error() <= 0.02
    for rate in ALL_RATES:
        fit = table.prr_fit[rate]
        assert np.all(np.diff(fit) >= 0.0)
        assert fit[-1] == 1.0  # every rate saturates by 30 dB


def test_sinr_model_wraps_table(tiny_table, tmp_path, monkeypatch):
    from repro.net.sinr import SinrModel

    path = tmp_path / "table.json"
    tiny_table.save(path)
    model = SinrModel.from_path(path)
    assert model.prr(10.0, 24) == tiny_table.prr(10.0, 24)
    assert model.cos_delivery_prob(12.0) == tiny_table.cos_delivery_prob(12.0)
    # default() honours the REPRO_SURROGATE_TABLE override (and caches).
    monkeypatch.setenv("REPRO_SURROGATE_TABLE", str(path))
    monkeypatch.setattr(SinrModel, "_default", None)
    assert SinrModel.default().table.spec_hash == tiny_table.spec_hash
    assert SinrModel.default() is SinrModel.default()
    monkeypatch.setattr(SinrModel, "_default", None)


def test_surrogate_matches_phy_fidelity_on_grid():
    """The bit-compatibility anchor: cos_fidelity="surrogate" returns the
    exact value cos_fidelity="phy" would measure, on the phy cache's own
    integer-dB grid."""
    from repro.net.control import measured_cos_delivery_prob

    table = load_default_table()
    assert table.cos_delivery_prob(20.0) == measured_cos_delivery_prob(20.0)


# ---------------------------------------------------------------------------
# Network wiring
# ---------------------------------------------------------------------------


def test_control_plane_fidelity_validation():
    from repro.net.control import ControlPlane

    class _Collector:
        def on_control_generated(self, msg):
            pass

        def on_control_delivered(self, msg, now):
            pass

    rng = np.random.default_rng(0)
    for fidelity in ("table", "phy", "surrogate"):
        ControlPlane("cos", rng, _Collector(), cos_fidelity=fidelity)
    with pytest.raises(ValueError, match="cos_fidelity"):
        ControlPlane("cos", rng, _Collector(), cos_fidelity="exact")


def test_scenario_with_fidelity():
    from repro.net import builtin_scenario

    spec = builtin_scenario("contention")
    assert spec.cos_fidelity == "table"
    surrogate = spec.with_fidelity("surrogate")
    assert surrogate.cos_fidelity == "surrogate"
    assert surrogate.name == spec.name
    assert spec.cos_fidelity == "table"  # original untouched


def test_hidden_node_ordering_survives_surrogate_fidelity():
    """The paper's headline — CoS control beats explicit control on the
    hidden-node scenario — must hold under measured-PHY delivery, too."""
    from repro.net import builtin_scenario, run_scenario_sweep, summarize_results

    spec = builtin_scenario(
        "hidden-node", n_packets=60, duration_us=60_000.0
    ).with_fidelity("surrogate")
    goodput = {}
    for control in ("cos", "explicit"):
        results = run_scenario_sweep(
            spec.with_control(control), n_trials=2, seed=9
        )
        goodput[control] = summarize_results(results)["aggregate_goodput_mbps"]
    assert goodput["cos"] > 0.0
    assert goodput["cos"] > goodput["explicit"], goodput
