"""Tests for receiver-internal estimators (phase, noise, validation)."""

import numpy as np
import pytest

from repro.channel import IndoorChannel, add_awgn
from repro.phy import RATE_TABLE, Receiver, Transmitter, build_mpdu
from repro.phy.ofdm import map_to_grid


class TestPilotPhaseTracking:
    def test_zero_phase_clean(self, rng):
        grid = map_to_grid(
            (rng.standard_normal((4, 48)) + 1j * rng.standard_normal((4, 48)))
            / np.sqrt(2)
        )
        h_est = np.ones(64, dtype=complex)
        phase, residuals = Receiver._pilot_phase(grid, h_est, symbol_offset=0)
        assert np.allclose(phase, 0.0, atol=1e-9)
        assert np.allclose(residuals, 0.0, atol=1e-9)

    def test_recovers_common_phase(self, rng):
        grid = map_to_grid(np.zeros((3, 48), dtype=complex), symbol_offset=2)
        rotated = grid * np.exp(1j * 0.3)
        phase, _ = Receiver._pilot_phase(rotated, np.ones(64, dtype=complex), 2)
        assert np.allclose(phase, 0.3, atol=1e-9)

    def test_residuals_reflect_noise(self, rng):
        grid = map_to_grid(np.zeros((200, 48), dtype=complex))
        noise_var = 0.02
        noisy = grid + np.sqrt(noise_var / 2) * (
            rng.standard_normal(grid.shape) + 1j * rng.standard_normal(grid.shape)
        )
        _, residuals = Receiver._pilot_phase(noisy, np.ones(64, dtype=complex), 0)
        measured = np.mean(np.abs(residuals) ** 2)
        assert measured == pytest.approx(noise_var, rel=0.15)


class TestNoiseRefinement:
    def test_empty_residuals_keep_ltf(self):
        assert Receiver._refine_noise(0.05, np.zeros(0)) == 0.05

    def test_blend(self):
        residuals = np.full(100, 0.2 + 0.0j)  # power 0.04
        refined = Receiver._refine_noise(0.02, residuals)
        assert refined == pytest.approx(0.5 * (0.02 + 0.04))


class TestReceiverValidation:
    def test_invalid_decision_mode(self):
        with pytest.raises(ValueError):
            Receiver(decision="fuzzy")

    def test_noise_var_estimate_tracks_truth(self, psdu):
        """End-to-end: the pilot-aided estimate lands near the injected
        subcarrier noise variance (eq. (5)-(6) fidelity)."""
        from repro.phy.ofdm import subcarrier_noise_variance

        estimates, truths = [], []
        for seed in range(6):
            rng = np.random.default_rng(seed)
            time_var = 10 ** (-18 / 10)
            frame = Transmitter().transmit(psdu, RATE_TABLE[12])
            noisy = add_awgn(frame.waveform, time_var, rng)
            obs = Receiver().observe(noisy)
            estimates.append(obs.noise_var)
            truths.append(subcarrier_noise_variance(time_var))
        assert np.mean(estimates) == pytest.approx(np.mean(truths), rel=0.25)

    def test_csi_weights_scale_with_gain(self):
        """Weak subcarriers must get proportionally weak LLRs end to end."""
        channel = IndoorChannel.position("A", snr_db=15.0, seed=27)
        psdu = build_mpdu(bytes(300))
        frame = Transmitter().transmit(psdu, RATE_TABLE[24])
        obs = Receiver().observe(channel.transmit(frame.waveform))
        gains = np.abs(obs.h_data) ** 2
        # The weakest subcarrier's gain is far below the strongest; the
        # CSI ratio used in decode is gains/noise, so the contrast there
        # is what protects the Viterbi metric from garbage.
        assert gains.max() / gains.min() > 2.0


class TestObserveEdgeCases:
    def test_exact_minimum_length(self, psdu):
        frame = Transmitter().transmit(psdu, RATE_TABLE[54])
        minimum = 320 + 80  # preamble + SIGNAL only
        obs = Receiver().observe(frame.waveform[:minimum])
        assert obs is not None
        assert obs.raw_data_grid.shape[0] == 0

    def test_one_sample_short(self, psdu):
        frame = Transmitter().transmit(psdu, RATE_TABLE[54])
        assert Receiver().observe(frame.waveform[: 320 + 79]) is None

    def test_extra_trailing_samples_ignored(self, psdu, rng):
        frame = Transmitter().transmit(psdu, RATE_TABLE[24])
        padded = np.concatenate([frame.waveform, np.zeros(37, dtype=complex)])
        result = Receiver().receive(padded)
        assert result.ok
