"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import make_rng, spawn_rngs


class TestMakeRng:
    def test_from_int_reproducible(self):
        assert make_rng(7).integers(0, 1000) == make_rng(7).integers(0, 1000)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(1, 5)) == 5

    def test_streams_differ(self):
        a, b = spawn_rngs(1, 2)
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_reproducible(self):
        first = [g.integers(0, 10**9) for g in spawn_rngs(42, 3)]
        second = [g.integers(0, 10**9) for g in spawn_rngs(42, 3)]
        assert first == second

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)
