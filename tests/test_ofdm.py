"""Unit tests for OFDM grid mapping and (I)FFT modulation."""

import numpy as np
import pytest

from repro.phy.ofdm import (
    DATA_BINS,
    PILOT_BINS,
    extract_data,
    extract_pilots,
    grid_to_time,
    map_to_grid,
    subcarrier_noise_variance,
    time_to_grid,
)
from repro.phy.params import CP_LEN, N_DATA_SUBCARRIERS, N_FFT, SYMBOL_SAMPLES


class TestGridMapping:
    def test_bin_sets_disjoint(self):
        assert not set(DATA_BINS.tolist()) & set(PILOT_BINS.tolist())
        assert 0 not in DATA_BINS  # DC is unused
        assert len(DATA_BINS) == 48

    def test_map_extract_roundtrip(self, rng):
        data = rng.standard_normal((3, 48)) + 1j * rng.standard_normal((3, 48))
        grid = map_to_grid(data)
        assert np.allclose(extract_data(grid), data)

    def test_guards_zero(self, rng):
        grid = map_to_grid(np.ones((1, 48), dtype=complex))
        used = set(DATA_BINS.tolist()) | set(PILOT_BINS.tolist())
        for b in range(N_FFT):
            if b not in used:
                assert grid[0, b] == 0

    def test_pilot_polarity_offset(self):
        g0 = map_to_grid(np.zeros((2, 48), dtype=complex), symbol_offset=0)
        g1 = map_to_grid(np.zeros((2, 48), dtype=complex), symbol_offset=1)
        assert np.allclose(g0[1, PILOT_BINS], g1[0, PILOT_BINS])

    def test_extract_pilots_matches_sent(self):
        grid = map_to_grid(np.zeros((5, 48), dtype=complex), symbol_offset=3)
        received, sent = extract_pilots(grid, symbol_offset=3)
        assert np.allclose(received, sent)

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            map_to_grid(np.zeros((1, 47), dtype=complex))


class TestTimeDomain:
    def test_grid_time_roundtrip(self, rng):
        data = rng.standard_normal((4, 48)) + 1j * rng.standard_normal((4, 48))
        grid = map_to_grid(data)
        restored = time_to_grid(grid_to_time(grid))
        assert np.allclose(restored, grid, atol=1e-12)

    def test_sample_count(self):
        grid = map_to_grid(np.zeros((3, 48), dtype=complex))
        assert grid_to_time(grid).size == 3 * SYMBOL_SAMPLES

    def test_cyclic_prefix_is_copy_of_tail(self, rng):
        data = rng.standard_normal((1, 48)) + 1j * rng.standard_normal((1, 48))
        samples = grid_to_time(map_to_grid(data))
        assert np.allclose(samples[:CP_LEN], samples[N_FFT : N_FFT + CP_LEN])

    def test_unit_average_power(self, rng):
        """Fully-populated symbols have ~unit average time-sample power."""
        data = (rng.standard_normal((50, 48)) + 1j * rng.standard_normal((50, 48))) / np.sqrt(2)
        samples = grid_to_time(map_to_grid(data))
        power = np.mean(np.abs(samples) ** 2)
        assert power == pytest.approx(1.0, rel=0.1)

    def test_partial_symbol_rejected(self):
        with pytest.raises(ValueError):
            time_to_grid(np.zeros(SYMBOL_SAMPLES + 1, dtype=complex))


class TestNoiseVariance:
    def test_conversion_factor(self):
        assert subcarrier_noise_variance(1.0) == pytest.approx(52 / 64)

    def test_empirical(self, rng):
        """White time noise appears with the predicted variance per bin."""
        noise = (rng.standard_normal(400 * SYMBOL_SAMPLES)
                 + 1j * rng.standard_normal(400 * SYMBOL_SAMPLES)) / np.sqrt(2)
        grid = time_to_grid(noise)
        measured = np.mean(np.abs(grid[:, DATA_BINS]) ** 2)
        assert measured == pytest.approx(subcarrier_noise_variance(1.0), rel=0.05)
