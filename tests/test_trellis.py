"""Unit tests for the Viterbi trellis tables."""

import numpy as np

from repro.phy.convcode import conv_encode
from repro.phy.trellis import N_STATES, Trellis, shared_trellis


class TestTrellisConsistency:
    def test_shared_singleton(self):
        assert shared_trellis() is shared_trellis()

    def test_shapes(self):
        t = shared_trellis()
        assert t.prev_state.shape == (N_STATES, 2)
        assert t.branch_pair.shape == (N_STATES, 2)
        assert t.input_bit.shape == (N_STATES,)
        assert t.next_state.shape == (N_STATES, 2)

    def test_forward_reverse_agree(self):
        t = shared_trellis()
        for state in range(N_STATES):
            for bit in (0, 1):
                ns = t.next_state[state, bit]
                # The transition state->ns must appear among ns's reverse edges.
                found = False
                for x in (0, 1):
                    if t.prev_state[ns, x] == state:
                        assert t.branch_pair[ns, x] == t.output_pair[state, bit]
                        found = True
                assert found

    def test_input_bit_is_msb(self):
        t = shared_trellis()
        for state in range(N_STATES):
            for bit in (0, 1):
                ns = t.next_state[state, bit]
                assert t.input_bit[ns] == bit

    def test_each_state_has_two_distinct_predecessors(self):
        t = shared_trellis()
        for ns in range(N_STATES):
            assert t.prev_state[ns, 0] != t.prev_state[ns, 1]

    def test_outputs_match_encoder(self, rng):
        """Walking the trellis forward must reproduce conv_encode."""
        t = shared_trellis()
        bits = rng.integers(0, 2, 100, dtype=np.uint8)
        expected = conv_encode(bits)
        state = 0
        out = []
        for b in bits:
            pair = t.output_pair[state, b]
            out.extend([(pair >> 1) & 1, pair & 1])
            state = int(t.next_state[state, b])
        assert np.array_equal(np.array(out, dtype=np.uint8), expected)

    def test_tail_zeros_reach_state_zero(self):
        t = shared_trellis()
        state = 37
        for _ in range(6):
            state = int(t.next_state[state, 0])
        assert state == 0
