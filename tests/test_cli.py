"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_link_defaults(self):
        args = build_parser().parse_args(["link"])
        assert args.snr == 15.0
        assert args.position == "A"
        assert args.packets == 50

    def test_invalid_position_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["link", "--position", "Q"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "802.11a" in out
        assert "54" in out and "22.4" in out

    def test_link_quick(self, capsys):
        code = main(
            ["link", "--packets", "4", "--payload", "200", "--snr", "15",
             "--seed", "5", "--predictor"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "data PRR" in out

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "fig9" not in out.lower().replace("fig. 9", "")
