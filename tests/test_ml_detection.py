"""Unit tests for the likelihood-ratio silence detector."""

import numpy as np
import pytest

from repro.cos.energy import EnergyDetector
from repro.cos.ml_detection import MlSilenceDetector
from repro.phy.modulation import get_modulation


def _scene(rng, mod_name, gain, noise_var, n_sym=200, silent_fraction=0.12):
    """Random QAM symbols through a flat gain, with planted silences."""
    mod = get_modulation(mod_name)
    bits = rng.integers(0, 2, n_sym * 48 * mod.bits_per_symbol, dtype=np.uint8)
    symbols = mod.map_bits(bits).reshape(n_sym, 48)
    truth = rng.random((n_sym, 48)) < silent_fraction
    sent = np.where(truth, 0.0, symbols) * gain
    noise = np.sqrt(noise_var / 2) * (
        rng.standard_normal((n_sym, 48)) + 1j * rng.standard_normal((n_sym, 48))
    )
    h = np.full(48, gain, dtype=complex)
    return sent + noise, truth, h, mod


class TestMlDetector:
    def test_perfect_at_high_snr(self, rng):
        grid, truth, h, mod = _scene(rng, "qpsk", gain=3.0, noise_var=0.01)
        report = MlSilenceDetector().detect(grid, range(48), 0.01, h, mod)
        fp, fn = EnergyDetector.confusion(report.mask, truth, range(48))
        assert fp == 0.0 and fn == 0.0

    def test_validates_inputs(self, rng):
        det = MlSilenceDetector()
        with pytest.raises(ValueError):
            det.detect(np.zeros((1, 47)), [0], 0.01, np.ones(48), get_modulation("qpsk"))
        with pytest.raises(ValueError):
            det.detect(np.zeros((1, 48)), [99], 0.01, np.ones(48), get_modulation("qpsk"))
        with pytest.raises(ValueError):
            MlSilenceDetector(prior_silence=0.0)

    def test_only_control_cells_flagged(self, rng):
        grid, truth, h, mod = _scene(rng, "qpsk", gain=2.0, noise_var=0.05, n_sym=10)
        report = MlSilenceDetector().detect(grid, [3, 4], 0.05, h, mod)
        assert not report.mask[:, 10].any()

    @pytest.mark.parametrize("mod_name", ["qpsk", "16qam", "64qam"])
    def test_bayes_risk_beats_energy_detector_marginal_regime(self, mod_name):
        """The LR test minimises the cell misclassification rate (Bayes
        risk at the true prior); the energy threshold cannot do better in
        the marginal regime where inner points hug the noise floor."""
        rng = np.random.default_rng(7)
        mod = get_modulation(mod_name)
        # Choose gain so e_min * snr ~ 12 (the hard regime).
        noise_var = 0.05
        gain = np.sqrt(12.0 * noise_var / mod.min_symbol_energy)
        grid, truth, h, _ = _scene(rng, mod_name, gain=gain, noise_var=noise_var)

        ml = MlSilenceDetector().detect(grid, range(48), noise_var, h, mod)
        en = EnergyDetector().detect(
            grid, range(48), noise_var,
            h_gains=np.abs(h) ** 2, min_symbol_energy=mod.min_symbol_energy,
        )
        err_ml = float((ml.mask != truth).mean())
        err_en = float((en.mask != truth).mean())
        assert err_ml <= err_en + 1e-4

    def test_prior_shifts_decisions(self, rng):
        grid, truth, h, mod = _scene(rng, "16qam", gain=1.0, noise_var=0.2, n_sym=100)
        eager = MlSilenceDetector(prior_silence=0.9).detect(grid, range(48), 0.2, h, mod)
        shy = MlSilenceDetector(prior_silence=0.01).detect(grid, range(48), 0.2, h, mod)
        assert eager.mask.sum() > shy.mask.sum()
