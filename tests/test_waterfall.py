"""Tests for the PHY waterfall validation experiment."""

import numpy as np
import pytest

from repro.experiments import waterfall


@pytest.fixture(scope="module")
def result():
    return waterfall.run(
        snrs_db=np.array([0.0, 4.0, 8.0, 14.0, 22.0]),
        n_packets=6,
        rates_mbps=(6, 24, 54),
    )


class TestWaterfall:
    def test_per_bounded(self, result):
        for mbps, per in result.per.items():
            assert np.all((0.0 <= per) & (per <= 1.0))

    def test_monotone(self, result):
        for mbps in result.per:
            assert result.monotone_non_increasing(mbps, slack=0.2)

    def test_rate_ordering(self, result):
        assert result.snr_for_per(6) <= result.snr_for_per(54)

    def test_low_rate_works_somewhere(self, result):
        assert result.snr_for_per(6, target=0.2) < float("inf")

    def test_top_rate_fails_at_low_snr(self, result):
        assert result.per[54][0] > 0.5

    def test_print(self, result, capsys):
        waterfall.print_result(result)
        out = capsys.readouterr().out
        assert "waterfall" in out
