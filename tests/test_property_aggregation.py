"""Property-based tests for A-MPDU aggregation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.aggregation import build_ampdu, parse_ampdu

payload_lists = st.lists(st.binary(min_size=1, max_size=200), min_size=1, max_size=8)


class TestAggregationProperties:
    @given(payload_lists)
    @settings(max_examples=50)
    def test_roundtrip(self, payloads):
        frames = parse_ampdu(build_ampdu(payloads))
        assert [f.mpdu.payload for f in frames] == payloads
        assert all(f.mpdu.fcs_ok for f in frames)

    @given(payload_lists)
    @settings(max_examples=50)
    def test_psdu_is_word_aligned(self, payloads):
        assert len(build_ampdu(payloads)) % 4 == 0

    @given(payload_lists, st.integers(0, 2**31 - 1))
    @settings(max_examples=50)
    def test_single_byte_corruption_never_fabricates_payload(self, payloads, seed):
        """After any single-byte corruption, every CRC-accepted subframe's
        payload is one of the originals — corruption may drop frames but
        never invents data."""
        rng = np.random.default_rng(seed)
        psdu = bytearray(build_ampdu(payloads))
        psdu[rng.integers(0, len(psdu))] ^= 0xFF
        frames = parse_ampdu(bytes(psdu))
        originals = set(payloads)
        for frame in frames:
            if frame.mpdu.fcs_ok:
                assert frame.mpdu.payload in originals

    @given(st.binary(max_size=600))
    @settings(max_examples=50)
    def test_arbitrary_bytes_never_crash(self, blob):
        frames = parse_ampdu(blob)
        assert isinstance(frames, list)
