"""Unit tests for the 802.11a block interleaver."""

import numpy as np
import pytest

from repro.phy.interleaver import deinterleave, interleave, interleaver_permutation
from repro.phy.params import RATE_TABLE


class TestRoundtrip:
    @pytest.mark.parametrize("mbps", sorted(RATE_TABLE))
    def test_roundtrip_all_rates(self, mbps, rng):
        rate = RATE_TABLE[mbps]
        bits = rng.integers(0, 2, 3 * rate.n_cbps, dtype=np.uint8)
        assert np.array_equal(deinterleave(interleave(bits, rate), rate), bits)

    def test_permutation_is_bijection(self):
        for rate in RATE_TABLE.values():
            perm = interleaver_permutation(rate)
            assert sorted(perm.tolist()) == list(range(rate.n_cbps))

    def test_partial_block_rejected(self):
        rate = RATE_TABLE[24]
        with pytest.raises(ValueError):
            interleave(np.zeros(rate.n_cbps + 1, dtype=np.uint8), rate)


class TestSpreading:
    def test_adjacent_coded_bits_spread_across_subcarriers(self):
        """The first permutation maps adjacent bits ~Ncbps/16 apart."""
        rate = RATE_TABLE[24]
        perm = interleaver_permutation(rate)
        n_bpsc = rate.n_bpsc
        subcarrier_of = perm // n_bpsc
        gaps = np.abs(np.diff(subcarrier_of[: rate.n_cbps // 2]))
        assert np.median(gaps) >= 3

    def test_symbol_erasure_spreads_in_codeword(self):
        """Erasing one OFDM symbol's 4 bits of subcarrier j lands them far
        apart after deinterleaving (the property EVD relies on)."""
        rate = RATE_TABLE[24]
        marked = np.zeros(rate.n_cbps)
        # bits of subcarrier 10 occupy positions 40..43 in the mapped order
        marked[10 * rate.n_bpsc : 11 * rate.n_bpsc] = 1.0
        original = deinterleave(marked, rate)
        positions = np.nonzero(original)[0]
        assert positions.size == rate.n_bpsc
        assert np.min(np.diff(positions)) > 8

    def test_blockwise_independence(self, rng):
        """Each n_cbps block interleaves independently."""
        rate = RATE_TABLE[12]
        b1 = rng.integers(0, 2, rate.n_cbps, dtype=np.uint8)
        b2 = rng.integers(0, 2, rate.n_cbps, dtype=np.uint8)
        both = interleave(np.concatenate([b1, b2]), rate)
        assert np.array_equal(both[: rate.n_cbps], interleave(b1, rate))
        assert np.array_equal(both[rate.n_cbps :], interleave(b2, rate))


class TestStandardProperty:
    def test_bpsk_second_permutation_identity(self):
        """For BPSK (s=1) the second permutation is the identity, so the
        interleaver is the pure 16-row block write/read."""
        rate = RATE_TABLE[6]
        perm = interleaver_permutation(rate)
        k = np.arange(rate.n_cbps)
        expected = (rate.n_cbps // 16) * (k % 16) + k // 16
        assert np.array_equal(perm, expected)

    def test_deinterleave_soft_values(self, rng):
        rate = RATE_TABLE[54]
        values = rng.normal(size=rate.n_cbps)
        restored = deinterleave(interleave(values, rate), rate)
        assert np.allclose(restored, values)
