"""Unit tests for AWGN generation."""

import numpy as np
import pytest

from repro.channel.awgn import add_awgn, complex_gaussian


class TestComplexGaussian:
    def test_variance(self, rng):
        samples = complex_gaussian(200_000, 0.5, rng)
        assert np.mean(np.abs(samples) ** 2) == pytest.approx(0.5, rel=0.02)

    def test_circular_symmetry(self, rng):
        samples = complex_gaussian(200_000, 1.0, rng)
        assert np.mean(samples.real**2) == pytest.approx(0.5, rel=0.05)
        assert np.mean(samples.imag**2) == pytest.approx(0.5, rel=0.05)
        assert abs(np.mean(samples.real * samples.imag)) < 0.01

    def test_shape(self, rng):
        assert complex_gaussian((3, 4), 1.0, rng).shape == (3, 4)

    def test_negative_variance_rejected(self, rng):
        with pytest.raises(ValueError):
            complex_gaussian(10, -1.0, rng)


class TestAddAwgn:
    def test_zero_variance_is_copy(self, rng):
        wave = np.ones(10, dtype=complex)
        out = add_awgn(wave, 0.0, rng)
        assert np.array_equal(out, wave)
        assert out is not wave

    def test_adds_expected_power(self, rng):
        wave = np.zeros(100_000, dtype=complex)
        out = add_awgn(wave, 0.25, rng)
        assert np.mean(np.abs(out) ** 2) == pytest.approx(0.25, rel=0.03)

    def test_preserves_signal_mean(self, rng):
        wave = np.full(100_000, 2.0 + 1.0j)
        out = add_awgn(wave, 0.1, rng)
        assert np.mean(out) == pytest.approx(2.0 + 1.0j, rel=0.01)
