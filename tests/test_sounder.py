"""Unit tests for the sounder / NIC SNR models."""

import numpy as np
import pytest

from repro.channel.multipath import TappedDelayLine
from repro.channel.sounder import actual_snr_db, measured_snr_db, per_subcarrier_snr
from repro.phy.ofdm import subcarrier_noise_variance


class TestPerSubcarrierSnr:
    def test_flat_channel(self):
        h = TappedDelayLine.identity().frequency_response()
        snrs = per_subcarrier_snr(h, 0.1)
        expected = 1.0 / subcarrier_noise_variance(0.1)
        assert np.allclose(snrs, expected)

    def test_accepts_48_gain_vector(self):
        gains = np.ones(48, dtype=complex)
        assert per_subcarrier_snr(gains, 1.0).shape == (48,)


class TestSnrRelations:
    def test_am_ge_hm_always(self):
        for seed in range(50):
            h = TappedDelayLine.for_position("A", seed).frequency_response()
            assert actual_snr_db(h, 0.05) >= measured_snr_db(h, 0.05) - 1e-9

    def test_equal_on_flat_channel(self):
        h = TappedDelayLine.identity().frequency_response()
        assert actual_snr_db(h, 0.05) == pytest.approx(measured_snr_db(h, 0.05))

    def test_db_scaling_with_noise(self):
        h = TappedDelayLine.for_position("A", 3).frequency_response()
        a1 = actual_snr_db(h, 0.01)
        a2 = actual_snr_db(h, 0.1)
        assert a1 - a2 == pytest.approx(10.0, abs=1e-9)
        m1 = measured_snr_db(h, 0.01)
        m2 = measured_snr_db(h, 0.1)
        assert m1 - m2 == pytest.approx(10.0, abs=1e-9)

    def test_gap_grows_with_selectivity(self):
        def gap(name, seed):
            h = TappedDelayLine.for_position(name, seed).frequency_response()
            return actual_snr_db(h, 0.05) - measured_snr_db(h, 0.05)

        gaps_a = np.median([gap("A", s) for s in range(60)])
        gaps_c = np.median([gap("C", s) for s in range(60)])
        assert gaps_a > gaps_c
