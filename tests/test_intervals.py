"""Unit tests for the interval codec (control bits <-> silence positions)."""

import numpy as np
import pytest

from repro.cos.intervals import IntervalCodec


class TestPaperExample:
    def test_section_ii_example(self):
        """The paper's 24-bit example "001001101000001110100111" groups as
        0010|0110|1000|0011|1010|0111, with 0010 -> 2, 0110 -> 6 and the
        final 0111 -> 7 exactly as the text states."""
        bits = [int(c) for c in "001001101000001110100111"]
        codec = IntervalCodec(k=4)
        assert codec.bits_to_intervals(bits) == [2, 6, 8, 3, 10, 7]

    def test_first_group_maps_to_two(self):
        codec = IntervalCodec(k=4)
        assert codec.bits_to_intervals([0, 0, 1, 0]) == [2]
        assert codec.bits_to_intervals([0, 1, 1, 0]) == [6]
        assert codec.bits_to_intervals([0, 1, 1, 1]) == [7]


class TestPositions:
    def test_start_marker_at_zero(self):
        codec = IntervalCodec()
        assert codec.bits_to_positions([]) == [0]

    def test_positions_from_intervals(self):
        codec = IntervalCodec()
        # interval 2 -> next silence at 0 + 2 + 1 = 3; interval 0 -> adjacent.
        assert codec.bits_to_positions([0, 0, 1, 0, 0, 0, 0, 0]) == [0, 3, 4]

    def test_roundtrip_random(self, rng):
        codec = IntervalCodec()
        for _ in range(20):
            bits = rng.integers(0, 2, 48, dtype=np.uint8)
            positions = codec.bits_to_positions(bits)
            assert np.array_equal(codec.positions_to_bits(positions), bits)

    def test_unsorted_positions_accepted(self):
        codec = IntervalCodec()
        bits = np.array([0, 0, 1, 0], dtype=np.uint8)
        positions = codec.bits_to_positions(bits)
        assert np.array_equal(codec.positions_to_bits(positions[::-1]), bits)

    def test_k_granularity_enforced(self):
        with pytest.raises(ValueError):
            IntervalCodec(k=4).bits_to_intervals([1, 0, 1])


class TestDecodeErrors:
    def test_oversized_interval_rejected(self):
        codec = IntervalCodec(k=4)
        with pytest.raises(ValueError):
            codec.positions_to_bits([0, 17])  # interval 16 > 15

    def test_duplicate_positions_rejected(self):
        codec = IntervalCodec()
        with pytest.raises(ValueError):
            codec.positions_to_bits([0, 0, 4])

    def test_single_position_is_empty_message(self):
        assert IntervalCodec().positions_to_bits([5]).size == 0

    def test_no_positions_is_empty_message(self):
        assert IntervalCodec().positions_to_bits([]).size == 0


class TestCapacityAccounting:
    def test_positions_needed_worst_case(self):
        codec = IntervalCodec(k=4)
        # 8 bits = 2 intervals of at most 15 -> 1 + 2*16 positions.
        assert codec.positions_needed(8) == 33

    def test_expected_positions(self):
        codec = IntervalCodec(k=4)
        assert codec.expected_positions(4) == pytest.approx(1 + 8.5)

    def test_silences_for(self):
        codec = IntervalCodec(k=4)
        assert codec.silences_for(0) == 1
        assert codec.silences_for(16) == 5

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            IntervalCodec(k=0)
        with pytest.raises(ValueError):
            IntervalCodec(k=17)

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 8])
    def test_max_interval(self, k):
        assert IntervalCodec(k=k).max_interval == 2**k - 1
