"""Unit tests for SNR-threshold rate adaptation.

The implementation lives in :mod:`repro.ratectl.staircase`;
``repro.rateadapt`` re-exports it and the old submodule path warns.
These tests run against the compatibility surface on purpose, pinning
both the decisions and the shim.
"""

import importlib
import warnings

import pytest

from repro.phy.params import RATE_TABLE
from repro.rateadapt import DEFAULT_THRESHOLDS, RateAdapter, min_required_snr_db, select_rate


class TestSelection:
    def test_paper_anchor_24mbps(self):
        """At measured 15 dB the paper selects 24 Mbps (min required 12)."""
        rate = select_rate(15.0)
        assert rate.mbps == 24
        assert min_required_snr_db(rate) == 12.0

    def test_floor_rate(self):
        assert select_rate(-10.0).mbps == min(DEFAULT_THRESHOLDS)

    def test_top_rate(self):
        assert select_rate(40.0).mbps == 54

    def test_monotone_in_snr(self):
        rates = [select_rate(s).mbps for s in range(0, 30)]
        assert rates == sorted(rates)

    def test_exact_threshold_selects_rate(self):
        for mbps, threshold in DEFAULT_THRESHOLDS.items():
            assert select_rate(threshold).mbps == mbps


class TestBands:
    def test_band_edges(self):
        adapter = RateAdapter()
        low, high = adapter.band(RATE_TABLE[24])
        assert low == 12.0
        assert high == 17.3

    def test_top_band_open(self):
        adapter = RateAdapter()
        low, high = adapter.band(RATE_TABLE[54])
        assert low == 22.4
        assert high == float("inf")

    def test_bands_tile_the_axis(self):
        adapter = RateAdapter()
        for snr in [x / 2 for x in range(6, 60)]:
            rate = adapter.select(snr)
            low, high = adapter.band(rate)
            assert low <= snr < high


class TestValidation:
    def test_non_monotone_thresholds_rejected(self):
        with pytest.raises(ValueError):
            RateAdapter(thresholds={6: 5.0, 9: 4.0})

    def test_unknown_rate_rejected(self):
        with pytest.raises(ValueError):
            RateAdapter(thresholds={7: 5.0})

    def test_missing_threshold_lookup(self):
        adapter = RateAdapter(thresholds={6: 2.0, 12: 7.0})
        with pytest.raises(KeyError):
            adapter.min_required_snr_db(RATE_TABLE[54])


class TestDeprecatedPath:
    def test_old_submodule_warns_on_import(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            import repro.rateadapt.snr_rate_adaptation as old

            importlib.reload(old)
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "repro.ratectl" in str(w.message)
            for w in caught
        )

    def test_package_import_stays_quiet(self):
        import repro.rateadapt as pkg

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.reload(pkg)
        assert not any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_decision_parity_with_ratectl(self):
        """Old and new import paths are decision-for-decision identical."""
        from repro.ratectl import staircase
        old = importlib.import_module("repro.rateadapt.snr_rate_adaptation")

        assert old.DEFAULT_THRESHOLDS == staircase.DEFAULT_THRESHOLDS
        old_adapter, new_adapter = old.RateAdapter(), staircase.RateAdapter()
        for snr_tenths in range(-50, 400):
            snr = snr_tenths / 10.0
            assert old.select_rate(snr) == staircase.select_rate(snr)
            assert old_adapter.select(snr) == new_adapter.select(snr)
