"""Tests for the ASCII grid renderer."""

import numpy as np
import pytest

from repro.cos.silence import SilencePlanner
from repro.cos.visualize import render_silence_grid


class TestRenderSilenceGrid:
    def test_marks_silences(self):
        mask = np.zeros((5, 48), dtype=bool)
        mask[2, 10] = True
        art = render_silence_grid(mask)
        assert "█" in art
        assert "  10 │" in art

    def test_counts_silences(self, rng):
        planner = SilencePlanner(list(range(8, 12)))
        plan = planner.plan(rng.integers(0, 2, 16, dtype=np.uint8), 20)
        art = render_silence_grid(plan.mask, planner.control_subcarriers)
        assert f"({plan.n_silences} silences)" in art

    def test_truncation_marker(self):
        mask = np.zeros((100, 48), dtype=bool)
        mask[:, 5] = True
        art = render_silence_grid(mask, max_symbols=10)
        assert "(truncated)" in art

    def test_empty_mask(self):
        art = render_silence_grid(np.zeros((5, 48), dtype=bool))
        assert "no silences" in art

    def test_all_rows_mode(self):
        mask = np.zeros((3, 48), dtype=bool)
        mask[0, 0] = True
        art = render_silence_grid(mask, only_control_rows=False)
        assert art.count("│") >= 96  # two bars per row, 48 rows

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            render_silence_grid(np.zeros((2, 47), dtype=bool))

    def test_renders_paper_fig1_shape(self):
        """The Fig. 1(a) example: 6 subcarriers, silences at interval 6."""
        from repro.cos.intervals import IntervalCodec

        planner = SilencePlanner(list(range(6)), IntervalCodec())
        plan = planner.plan([0, 1, 1, 0], n_symbols=4)
        art = render_silence_grid(plan.mask, list(range(6)))
        # grid glyphs plus the one in the legend line
        assert art.count("█") == plan.n_silences + 1
        assert plan.n_silences == 2
