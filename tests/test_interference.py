"""Unit tests for the pulse interferer."""

import numpy as np
import pytest

from repro.channel.interference import PulseInterferer
from repro.phy.params import SYMBOL_SAMPLES


class TestPulseInterferer:
    def test_zero_probability_no_change(self, rng):
        wave = np.ones(800, dtype=complex)
        out = PulseInterferer(symbol_probability=0.0, rng=rng).apply(wave)
        assert np.array_equal(out, wave)

    def test_adds_power_somewhere(self):
        wave = np.zeros(80 * 100, dtype=complex)
        out = PulseInterferer(
            pulse_power=10.0, symbol_probability=0.5, rng=np.random.default_rng(1)
        ).apply(wave)
        assert np.max(np.abs(out) ** 2) > 1.0

    def test_burst_rate_matches_probability(self):
        n_windows = 2000
        wave = np.zeros(SYMBOL_SAMPLES * n_windows, dtype=complex)
        out = PulseInterferer(
            pulse_power=100.0, symbol_probability=0.2, rng=np.random.default_rng(2)
        ).apply(wave)
        hit = (np.abs(out.reshape(n_windows, SYMBOL_SAMPLES)) ** 2).max(axis=1) > 1.0
        assert hit.mean() == pytest.approx(0.2, abs=0.03)

    def test_original_untouched(self, rng):
        wave = np.ones(160, dtype=complex)
        PulseInterferer(symbol_probability=1.0, rng=rng).apply(wave)
        assert np.all(wave == 1.0)

    def test_short_waveform(self, rng):
        wave = np.zeros(10, dtype=complex)
        out = PulseInterferer(rng=rng).apply(wave)
        assert out.size == 10

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            PulseInterferer(pulse_power=-1.0)
        with pytest.raises(ValueError):
            PulseInterferer(symbol_probability=1.5)
