"""Tests for the repro.obs subsystem: metrics, tracing, flight records."""

import json
import math
import time

import numpy as np
import pytest

import repro.obs as obs
from repro.obs import flight as flight_mod
from repro.obs import trace as trace_mod
from repro.obs.metrics import Histogram, MetricsRegistry, get_registry, set_registry
from repro.obs.trace import span


@pytest.fixture(autouse=True)
def _isolated_obs():
    """Fresh registry + disabled tracing around every test."""
    previous = set_registry(MetricsRegistry())
    obs.shutdown()
    yield
    obs.shutdown()
    set_registry(previous)


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_inc_rejected(self):
        c = MetricsRegistry().counter("hits_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labels_are_independent_children(self):
        c = MetricsRegistry().counter("hits_total")
        c.labels(cause="ok").inc(3)
        c.labels(cause="crc_fail").inc()
        assert c.labels(cause="ok").value == 3
        assert c.labels(cause="crc_fail").value == 1

    def test_same_name_returns_same_family(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("temp")
        g.set(10.0)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram(buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1, 1]
        assert h.cumulative_counts() == [1, 2, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)

    def test_boundary_value_lands_in_its_bucket(self):
        # le semantics: an observation equal to a bound belongs to it.
        h = Histogram(buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.bucket_counts[0] == 1

    def test_quantiles(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0, 8.0))
        for v in (0.5, 1.5, 2.5, 3.0, 7.0):
            h.observe(v)
        assert 0.0 < h.quantile(0.5) <= 4.0
        assert h.quantile(1.0) <= 8.0
        assert math.isnan(Histogram(buckets=(1.0,)).quantile(0.5))

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, float("inf")))


class TestExport:
    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("a_total", help="things").labels(kind="x").inc(2)
        reg.gauge("b").set(1.5)
        reg.histogram("lat_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = reg.to_prometheus()
        assert "# TYPE a_total counter" in text
        assert 'a_total{kind="x"} 2.0' in text
        assert "# HELP a_total things" in text
        assert "b 1.5" in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = json.loads(reg.to_json())
        assert snap["a_total"]["kind"] == "counter"
        assert snap["a_total"]["series"][0]["value"] == 1.0
        assert snap["h"]["series"][0]["count"] == 1

    def test_reset_clears_families(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        reg.reset()
        assert reg.snapshot() == {}

    def test_default_registry_swap(self):
        fresh = MetricsRegistry()
        old = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(old)


class TestMerge:
    def test_counters_add_gauges_overwrite_histograms_accumulate(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c_total").inc(2)
        b.counter("c_total").inc(3)
        a.gauge("g").set(1.0)
        b.gauge("g").set(7.0)
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        a.merge(b)
        assert a.counter("c_total").value == 5.0
        assert a.gauge("g").value == 7.0
        h = a.histogram("h", buckets=(1.0, 2.0)).labels()
        assert h.count == 2 and h.sum == 2.0
        assert h.bucket_counts == [1, 1, 0]

    def test_empty_registries_merge_as_noops(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.merge(b)
        assert a.snapshot() == {}
        a.counter("c_total").inc()
        a.merge(MetricsRegistry())
        a.merge({})
        assert a.counter("c_total").value == 1.0

    def test_family_with_no_series_still_registers(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("later_total", help="declared but never incremented")
        a.merge(b)
        # Kind is now pinned: re-registering as a gauge must fail.
        with pytest.raises(ValueError, match="already registered"):
            a.gauge("later_total")

    def test_kind_mismatch_rejected_and_parent_untouched(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc(4)
        b.gauge("x").set(1.0)
        with pytest.raises(ValueError, match="already registered"):
            a.merge(b)
        assert a.counter("x").value == 4.0

    def test_histogram_bucket_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("h", buckets=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            a.merge(b)
        # Parent histogram unchanged by the rejected merge.
        assert a.histogram("h", buckets=(1.0, 2.0)).labels().count == 1

    def test_failed_merge_is_atomic_across_families(self):
        # The failing family sorts *after* a mergeable one; validation
        # must reject the whole snapshot before applying anything.
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("a_total").inc(1)
        a.histogram("z_h", buckets=(1.0,)).observe(0.5)
        b.counter("a_total").inc(10)
        b.histogram("z_h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b)
        assert a.counter("a_total").value == 1.0
        # And no spurious labelled children appeared on the histogram.
        assert a.histogram("z_h", buckets=(1.0,)).labels().count == 1

    def test_duplicate_label_sets_apply_in_order(self):
        reg = MetricsRegistry()
        snapshot = {
            "dup_total": {"kind": "counter", "help": "", "series": [
                {"labels": {"k": "v"}, "value": 2.0},
                {"labels": {"k": "v"}, "value": 3.0},
            ]},
            "dup_gauge": {"kind": "gauge", "help": "", "series": [
                {"labels": {}, "value": 1.0},
                {"labels": {}, "value": 9.0},
            ]},
        }
        reg.merge(snapshot)
        assert reg.counter("dup_total").labels(k="v").value == 5.0
        assert reg.gauge("dup_gauge").value == 9.0

    def test_negative_counter_increment_rejected_atomically(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(2)
        with pytest.raises(ValueError, match="negative"):
            reg.merge({"c_total": {"kind": "counter", "series": [
                {"labels": {}, "value": -1.0}]}})
        assert reg.counter("c_total").value == 2.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown metric kind"):
            MetricsRegistry().merge({"x": {"kind": "summary", "series": []}})

    def test_merge_accepts_snapshot_dicts_across_pickle(self):
        import pickle

        b = MetricsRegistry()
        b.counter("c_total").labels(stage="rx").inc(4)
        snap = pickle.loads(pickle.dumps(b.snapshot()))
        a = MetricsRegistry()
        a.merge(snap)
        assert a.counter("c_total").labels(stage="rx").value == 4.0


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        s1 = span("a")
        s2 = span("b", k=1)
        assert s1 is s2
        assert not s1.enabled
        with s1 as s:
            assert s.set(x=1) is s  # chainable no-op

    def test_nested_spans_record_parent_and_depth(self):
        sink = obs.MemorySink()
        with obs.tracing(sink):
            with span("outer") as outer:
                with span("inner"):
                    time.sleep(0.001)
            assert outer.enabled
        inner_ev, outer_ev = sink.events
        assert inner_ev["name"] == "inner"
        assert inner_ev["parent"] == outer_ev["id"]
        assert inner_ev["depth"] == 1
        assert outer_ev["parent"] is None
        assert outer_ev["dur_s"] >= inner_ev["dur_s"] >= 0.001

    def test_span_labels_and_late_set(self):
        sink = obs.MemorySink()
        with obs.tracing(sink):
            with span("s", a=1) as sp:
                sp.set(b="two")
        assert sink.events[0]["labels"] == {"a": 1, "b": "two"}

    def test_exception_annotates_span(self):
        sink = obs.MemorySink()
        with obs.tracing(sink):
            with pytest.raises(RuntimeError):
                with span("boom"):
                    raise RuntimeError("x")
        assert sink.events[0]["labels"]["error"] == "RuntimeError"

    def test_span_durations_feed_registry_histogram(self):
        reg = MetricsRegistry()
        with obs.tracing(obs.MemorySink(), registry=reg):
            with span("stage"):
                pass
        hist = reg.histogram("repro_span_seconds").labels(name="stage")
        assert hist.count == 1

    def test_point_events(self):
        sink = obs.MemorySink()
        with obs.tracing(sink):
            with span("s"):
                obs.event("marker", value=3)
        marker = [e for e in sink.events if e["type"] == "event"][0]
        assert marker["name"] == "marker"
        assert marker["value"] == 3
        assert marker["parent"] is not None

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        session = obs.configure(trace_out=str(path))
        with span("outer"):
            with span("inner", n=np.int64(5)):
                pass
        session.close()
        events = list(obs.read_jsonl(path))
        assert [e["name"] for e in events] == ["inner", "outer"]
        assert events[0]["labels"]["n"] == 5  # numpy scalar became JSON int

    def test_noop_fast_path_is_cheap(self):
        n = 50_000
        t0 = time.perf_counter()
        for _ in range(n):
            with span("hot"):
                pass
        per_span = (time.perf_counter() - t0) / n
        # Hard bar is < 1 µs (bench_obs_overhead.py); allow CI slack here.
        assert per_span < 10e-6


# ---------------------------------------------------------------------------
# Flight records
# ---------------------------------------------------------------------------


def _run_link(adapter=None, snr_db=15.0, packets=3, position="A"):
    from repro.channel import IndoorChannel
    from repro.cos import CosLink

    channel = IndoorChannel.position(position, snr_db=snr_db, seed=5)
    link = CosLink(channel=channel, adapter=adapter)
    return link.run(n_packets=packets, payload=bytes(300))


class TestClassifyFailure:
    def test_taxonomy(self):
        f = obs.classify_failure
        assert f(False, False, 4, False, None) == "signal_loss"
        assert f(True, False, 4, False, None) == "crc_fail"
        assert f(True, True, 4, False, "too faded") == "feedback_loss"
        assert f(True, True, 4, False, None) == "detection_miss"
        assert f(True, True, 4, True, None) == "ok"
        assert f(True, True, 0, False, None) == "ok"  # nothing sent


class TestFlightRecords:
    def test_crc_pass_record_is_complete(self):
        sink = obs.MemorySink()
        session = obs.configure(trace_out=sink)
        stats = _run_link(packets=2)
        session.close()
        assert stats.prr == 1.0
        flights = [e for e in sink.events if e["type"] == "flight"]
        assert len(flights) == 2
        rec = flights[0]
        assert rec["crc_ok"] is True
        assert rec["signal_ok"] is True
        assert rec["failure_cause"] == "ok"
        assert rec["rate_mbps"] in (6, 9, 12, 18, 24, 36, 48, 54)
        assert rec["snr_gap_db"] > 0  # rate adaptation leaves headroom
        assert rec["n_silences"] > 0
        assert len(rec["silence_positions"]) == min(rec["n_silences"], 512)
        assert rec["detection_threshold"] > 0
        assert rec["energy_max"] >= rec["energy_mean"] >= rec["energy_min"]
        assert len(rec["symbol_min_energy"]) > 0
        assert rec["evd_erasures"] >= rec["n_silences"] - 50  # detector found most
        assert rec["control_sent_bits"] > 0
        assert rec["control_ok"] is True
        assert rec["evm_selected_subcarriers"]  # feedback flowed on success
        assert rec["n_control_subcarriers"] >= 1
        assert rec["target_silences"] >= 0
        # second packet uses the fed-back subcarriers
        assert flights[1]["control_subcarriers"]

    def test_crc_fail_record_classified(self):
        from repro.rateadapt import RateAdapter

        sink = obs.MemorySink()
        session = obs.configure(trace_out=sink)
        # Force 64QAM-3/4 at 6 dB: guaranteed CRC failure.
        _run_link(adapter=RateAdapter(thresholds={54: 2.0}), snr_db=6.0,
                  packets=2, position="C")
        session.close()
        flights = [e for e in sink.events if e["type"] == "flight"]
        assert flights, "no flight records emitted"
        failed = [f for f in flights if not f["crc_ok"]]
        assert failed, "expected at least one CRC failure at 54 Mbps / 6 dB"
        rec = failed[0]
        assert rec["failure_cause"] in ("crc_fail", "signal_loss")
        assert rec["evm_selected_subcarriers"] == []  # no feedback on failure
        # fallback must have engaged by the next record, if any followed
        later = [f for f in flights if f["seq"] > rec["seq"]]
        if later:
            assert later[0]["in_fallback"] is True

    def test_cause_counter_in_registry(self):
        reg = get_registry()
        session = obs.configure(trace_out=obs.MemorySink())
        _run_link(packets=2)
        session.close()
        fam = reg.counter("repro_flight_total")
        assert fam.labels(cause="ok").value == 2

    def test_recorder_disabled_means_no_records(self):
        assert flight_mod.current_recorder() is None
        stats = _run_link(packets=1)
        assert stats.prr == 1.0  # instrumented path still works untraced


# ---------------------------------------------------------------------------
# Always-on metrics from the instrumented pipeline
# ---------------------------------------------------------------------------


class TestPipelineMetrics:
    def test_exchange_counters(self):
        reg = get_registry()
        _run_link(packets=3)
        assert reg.counter("repro_exchanges_total").value == 3
        assert reg.counter("repro_tx_packets_total").value == 3
        assert reg.counter("repro_tx_silences_total").value > 0
        sent = reg.counter("repro_tx_control_bits_total").value
        delivered = reg.counter("repro_control_bits_delivered_total").value
        assert 0 < delivered <= sent
        assert reg.counter("repro_rate_selected_total").labels(mbps=36).value >= 0

    def test_fallback_transition_counter(self):
        from repro.cos.rate_control import ControlRateController

        reg = get_registry()
        ctl = ControlRateController()
        ctl.on_data_result(False)
        ctl.on_data_result(True)
        fam = reg.counter("repro_rate_fallback_transitions_total")
        assert fam.labels(direction="enter").value == 1
        assert fam.labels(direction="exit").value == 1
        assert reg.gauge("repro_rate_in_fallback").value == 0.0


# ---------------------------------------------------------------------------
# Trace summarisation
# ---------------------------------------------------------------------------


class TestSummarize:
    def test_live_trace_summary_and_coverage(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        session = obs.configure(trace_out=str(path))
        _run_link(packets=3)
        session.close()
        summary = obs.summarize_trace(path)
        names = {s.name for s in summary.stages}
        assert {"cos.exchange", "cos.tx.build", "channel.transmit",
                "cos.rx.receive", "phy.rx.decode", "phy.viterbi",
                "cos.energy.detect"} <= names
        assert summary.n_flights == 3
        assert summary.causes == {"ok": 3}
        # Acceptance bar: spans cover >= 90 % of exchange wall-clock.
        assert summary.exchange_coverage >= 0.90
        exch = summary.stage("cos.exchange")
        assert exch.count == 3
        assert exch.p95_s >= exch.p50_s > 0

    def test_format_summary_tables(self):
        events = [
            {"type": "span", "name": "cos.exchange", "id": 1, "parent": None,
             "dur_s": 0.010, "depth": 0},
            {"type": "span", "name": "cos.rx.receive", "id": 2, "parent": 1,
             "dur_s": 0.009, "depth": 1},
            {"type": "flight", "failure_cause": "crc_fail"},
            {"type": "flight", "failure_cause": "ok"},
        ]
        summary = obs.summarize_events(events)
        text = obs.format_summary(summary)
        assert "Per-stage latency" in text
        assert "cos.exchange" in text
        assert "p95 ms" in text
        assert "Failure causes" in text
        assert "crc_fail" in text
        assert "span coverage: 90.0 %" in text

    def test_empty_trace(self):
        summary = obs.summarize_events([])
        assert summary.exchange_coverage == 0.0
        assert obs.format_summary(summary)  # renders without crashing


# ---------------------------------------------------------------------------
# configure/shutdown lifecycle
# ---------------------------------------------------------------------------


class TestConfigure:
    def test_context_manager_disables_on_exit(self):
        with obs.configure(trace_out=obs.MemorySink()) as session:
            assert trace_mod.current_tracer() is session.tracer
            assert flight_mod.current_recorder() is session.recorder
        assert trace_mod.current_tracer() is None
        assert flight_mod.current_recorder() is None

    def test_close_is_idempotent(self):
        session = obs.configure()
        session.close()
        session.close()

    def test_trace_only(self):
        with obs.configure(enable_flight=False) as session:
            assert session.recorder is None
            assert trace_mod.current_tracer() is not None
