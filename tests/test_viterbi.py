"""Unit tests for the soft-decision erasure-capable Viterbi decoder."""

import numpy as np
import pytest

from repro.phy.convcode import conv_encode
from repro.phy.viterbi import ViterbiDecoder, hard_bits_to_llrs


def _encode_terminated(info, rng=None):
    bits = np.concatenate([info, np.zeros(6, dtype=np.uint8)])
    return conv_encode(bits), bits


class TestCleanDecoding:
    def test_decodes_clean_stream(self, rng):
        info = rng.integers(0, 2, 120, dtype=np.uint8)
        coded, padded = _encode_terminated(info)
        decoded = ViterbiDecoder().decode(hard_bits_to_llrs(coded))
        assert np.array_equal(decoded, padded)

    def test_empty_stream(self):
        assert ViterbiDecoder().decode(np.zeros(0)).size == 0

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            ViterbiDecoder().decode(np.zeros(3))

    def test_decode_hard_convenience(self, rng):
        info = rng.integers(0, 2, 50, dtype=np.uint8)
        coded, padded = _encode_terminated(info)
        assert np.array_equal(ViterbiDecoder().decode_hard(coded), padded)

    def test_unterminated_mode(self, rng):
        info = rng.integers(0, 2, 120, dtype=np.uint8)
        coded = conv_encode(info)  # no tail
        decoded = ViterbiDecoder(terminated=False).decode(hard_bits_to_llrs(coded))
        # All but the last few constraint-length bits must be exact.
        assert np.array_equal(decoded[:-8], info[:-8])


class TestErrorCorrection:
    def test_corrects_scattered_bit_errors(self, rng):
        info = rng.integers(0, 2, 200, dtype=np.uint8)
        coded, padded = _encode_terminated(info)
        corrupted = coded.copy()
        # Flip well-separated coded bits (within free-distance capability).
        for pos in range(10, 400, 45):
            corrupted[pos] ^= 1
        decoded = ViterbiDecoder().decode(hard_bits_to_llrs(corrupted))
        assert np.array_equal(decoded, padded)

    def test_soft_beats_wrong_confidence(self, rng):
        """Errors carrying *low* |LLR| must not damage the path decision."""
        info = rng.integers(0, 2, 200, dtype=np.uint8)
        coded, padded = _encode_terminated(info)
        llrs = hard_bits_to_llrs(coded)
        # Corrupt 15% of bits but mark them nearly-erased.
        idx = rng.choice(llrs.size, size=llrs.size * 15 // 100, replace=False)
        llrs[idx] = -0.01 * llrs[idx]
        decoded = ViterbiDecoder().decode(llrs)
        assert np.array_equal(decoded, padded)


class TestErasures:
    def test_tolerates_many_erasures(self, rng):
        """Zero-LLR positions carry no information but do not mislead."""
        info = rng.integers(0, 2, 300, dtype=np.uint8)
        coded, padded = _encode_terminated(info)
        llrs = hard_bits_to_llrs(coded)
        idx = rng.choice(llrs.size, size=llrs.size // 4, replace=False)
        llrs[idx] = 0.0  # 25% erasures
        decoded = ViterbiDecoder().decode(llrs)
        assert np.array_equal(decoded, padded)

    def test_erasures_strictly_better_than_errors(self, rng):
        """The §III-E claim: erasing beats inverting, statistically."""
        err_fail = 0
        ers_fail = 0
        trials = 20
        for t in range(trials):
            local = np.random.default_rng(t)
            info = local.integers(0, 2, 150, dtype=np.uint8)
            coded, padded = _encode_terminated(info)
            llrs = hard_bits_to_llrs(coded)
            idx = local.choice(llrs.size, size=llrs.size * 30 // 100, replace=False)
            as_errors = llrs.copy()
            as_errors[idx] *= -1.0  # confidently wrong
            as_erasures = llrs.copy()
            as_erasures[idx] = 0.0
            if not np.array_equal(ViterbiDecoder().decode(as_errors), padded):
                err_fail += 1
            if not np.array_equal(ViterbiDecoder().decode(as_erasures), padded):
                ers_fail += 1
        assert ers_fail < err_fail

    def test_all_erased_decodes_to_something(self):
        decoded = ViterbiDecoder().decode(np.zeros(100))
        assert decoded.size == 50
        assert set(np.unique(decoded)) <= {0, 1}


class TestHardBitsToLlrs:
    def test_signs(self):
        llrs = hard_bits_to_llrs(np.array([0, 1, 0]))
        assert llrs.tolist() == [1.0, -1.0, 1.0]

    def test_confidence_scaling(self):
        llrs = hard_bits_to_llrs(np.array([0, 1]), confidence=2.5)
        assert llrs.tolist() == [2.5, -2.5]
