"""Unit tests for the slotted DCF simulator."""

import numpy as np
import pytest

from repro.mac.dcf import (
    ACK_US,
    CW_MAX,
    CW_MIN,
    DcfSimulator,
    Frame,
    MacStats,
    Station,
)


def _data_frame(duration=500.0, bits=8192):
    return Frame(kind="data", duration_us=duration, payload_bits=bits)


class TestStation:
    def test_backoff_in_window(self, rng):
        station = Station(name="a", queue=[_data_frame()])
        station.draw_backoff(rng)
        assert 0 <= station.backoff <= CW_MIN

    def test_collision_doubles_cw(self, rng):
        station = Station(name="a", queue=[_data_frame()])
        station.on_collision(rng)
        assert station.cw == 2 * (CW_MIN + 1) - 1

    def test_cw_capped(self, rng):
        station = Station(name="a", queue=[_data_frame()])
        for _ in range(12):
            station.queue = [_data_frame()]
            station.on_collision(rng)
        assert station.cw <= CW_MAX

    def test_retry_limit_drops(self, rng):
        frame = _data_frame()
        station = Station(name="a", queue=[frame])
        for _ in range(10):
            if not station.queue:
                break
            station.on_collision(rng)
        assert not station.queue

    def test_success_resets(self, rng):
        station = Station(name="a", queue=[_data_frame(), _data_frame()])
        station.cw = 255
        station.on_success()
        assert station.cw == CW_MIN
        assert len(station.queue) == 1


class TestSimulator:
    def test_single_station_delivers_everything(self):
        frames = [_data_frame() for _ in range(10)]
        sim = DcfSimulator([Station(name="a", queue=list(frames))], rng=1)
        stats = sim.run(duration_us=1e6)
        assert stats.delivered_frames == 10
        assert stats.collisions == 0
        assert stats.delivered_bits == 10 * 8192

    def test_airtime_accounting_consistent(self):
        sim = DcfSimulator([Station(name="a", queue=[_data_frame()])], rng=1)
        stats = sim.run(duration_us=1e5)
        total = sum(stats.airtime_us.values())
        assert total == pytest.approx(stats.elapsed_us, rel=0.01)
        assert stats.airtime_us["ack"] == pytest.approx(ACK_US)

    def test_contention_causes_collisions(self):
        stations = [
            Station(name=f"s{i}", queue=[_data_frame(duration=300.0) for _ in range(40)])
            for i in range(8)
        ]
        stats = DcfSimulator(stations, rng=2).run(duration_us=2e5)
        assert stats.collisions > 0

    def test_goodput_decreases_with_contenders_at_saturation(self):
        """With the same (saturating) offered load, collisions make many
        contenders less efficient than one."""

        def goodput(n):
            per_station = 2400 // n
            stations = [
                Station(name=f"s{i}", queue=[_data_frame() for _ in range(per_station)])
                for i in range(n)
            ]
            return DcfSimulator(stations, rng=3).run(duration_us=3e5).goodput_mbps

        assert goodput(1) >= goodput(12)

    def test_control_latency_recorded(self):
        frames = [Frame(kind="control", duration_us=44.0, created_us=0.0)]
        stats = DcfSimulator([Station(name="a", queue=frames)], rng=4).run(1e5)
        assert len(stats.control_latencies_us) == 1
        assert stats.control_latencies_us[0] > 0

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            DcfSimulator([Station(name="a"), Station(name="a")])

    def test_empty_station_list_rejected(self):
        with pytest.raises(ValueError):
            DcfSimulator([])

    def test_idle_when_no_traffic(self):
        stats = DcfSimulator([Station(name="a")], rng=5).run(1e4)
        assert stats.airtime_us["idle"] == pytest.approx(1e4)
        assert stats.delivered_frames == 0

    def test_deterministic_given_seed(self):
        def run():
            stations = [
                Station(name=f"s{i}", queue=[_data_frame() for _ in range(20)])
                for i in range(4)
            ]
            return DcfSimulator(stations, rng=7).run(2e5)

        a, b = run(), run()
        assert a.delivered_frames == b.delivered_frames
        assert a.collisions == b.collisions
