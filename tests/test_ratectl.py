"""Tests for the pluggable rate-control subsystem (repro.ratectl)."""

import dataclasses

import numpy as np
import pytest

from repro.mac.overhead import BASE_RATE_MBPS
from repro.net import NetLens, builtin_scenario, run_scenario, run_scenario_sweep
from repro.ratectl import (
    CONTROLLER_MATRIX,
    CONTROLLERS,
    MinstrelController,
    RateController,
    SampleRateController,
    SnrThresholdController,
    available_controllers,
    compare_controllers,
    make_controller,
)


def small_spec(**overrides):
    spec = builtin_scenario("hidden-node", n_packets=30,
                            duration_us=30_000.0)
    return dataclasses.replace(spec, **overrides) if overrides else spec


class TestRegistry:
    def test_matrix_controllers_registered(self):
        for name in CONTROLLER_MATRIX:
            assert name in CONTROLLERS

    def test_available_is_sorted(self):
        names = available_controllers()
        assert list(names) == sorted(names)

    def test_make_controller_builds_named_instance(self):
        for name in available_controllers():
            ctrl = make_controller(name)
            assert isinstance(ctrl, RateController)
            assert ctrl.name == name

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError) as exc:
            make_controller("no-such-thing")
        for name in available_controllers():
            assert name in str(exc.value)

    def test_transport_pins(self):
        assert CONTROLLERS["cos-feedback"].transport == "cos"
        assert CONTROLLERS["explicit-feedback"].transport == "explicit"
        assert CONTROLLERS["snr-threshold"].transport is None
        assert CONTROLLERS["minstrel"].uses_feedback is False
        assert CONTROLLERS["samplerate"].uses_feedback is False


class TestSnrThreshold:
    def test_starts_at_base_rate(self):
        ctrl = SnrThresholdController()
        assert ctrl.select_rate("a", "b") == BASE_RATE_MBPS

    def test_feedback_moves_rate_per_staircase(self):
        ctrl = SnrThresholdController()
        ctrl.on_feedback("a", "b", 15.0)
        assert ctrl.select_rate("a", "b") == 24
        ctrl.on_feedback("a", "b", 40.0)
        assert ctrl.select_rate("a", "b") == 54
        # Per-flow state: the reverse direction is untouched.
        assert ctrl.select_rate("b", "a") == BASE_RATE_MBPS

    def test_scenario_parity_with_legacy_plane(self):
        """controller="snr-threshold" is decision-for-decision the legacy
        in-plane staircase: identical results, bit for bit."""
        spec = small_spec()
        legacy = run_scenario(spec, rng=7).to_dict()
        routed = run_scenario(
            dataclasses.replace(spec, controller="snr-threshold"), rng=7
        ).to_dict()
        assert routed.pop("controller") == "snr-threshold"
        assert routed == legacy


class TestMinstrel:
    def test_ewma_convergence_on_fixed_prr_step(self):
        """Constant outcomes converge geometrically: after k successes the
        EWMA sits at 1 - (1-w)^(k-1) from a first-observation seed."""
        ctrl = MinstrelController(ewma_weight=0.25)
        ctrl.on_tx_result("a", "b", 54, True, 0)
        assert ctrl.success_prob("a", "b", 54) == 1.0
        # Step the true PRR down to 0: the estimate decays by (1-w) per fate.
        expected = 1.0
        for _ in range(10):
            ctrl.on_tx_result("a", "b", 54, False, 0)
            expected *= 0.75
            assert ctrl.success_prob("a", "b", 54) == pytest.approx(expected)
        assert ctrl.success_prob("a", "b", 54) < 0.06

    def test_best_rate_maximises_throughput(self):
        ctrl = MinstrelController()
        ctrl.on_tx_result("a", "b", 54, False, 0)  # 54 never delivers
        ctrl.on_tx_result("a", "b", 24, True, 0)
        ctrl.on_tx_result("a", "b", 12, True, 0)
        # 24 * 1.0 beats 12 * 1.0 and 54 * 0.0.
        assert ctrl.best_rate("a", "b") == 24

    def test_retry_chain(self):
        ctrl = MinstrelController(sample_prob=0.0)
        ctrl.on_tx_result("a", "b", 54, True, 0)
        ctrl.on_tx_result("a", "b", 48, True, 0)
        ctrl.on_tx_result("a", "b", 6, True, 0)
        assert ctrl.select_rate("a", "b", retries=0) == 54  # best throughput
        assert ctrl.select_rate("a", "b", retries=1) == 48  # second best
        # Max-prob ties (all 1.0) resolve to the lowest rate.
        assert ctrl.select_rate("a", "b", retries=2) == 6
        assert ctrl.select_rate("a", "b", retries=3) == 6
        assert ctrl.select_rate("a", "b", retries=4) == 6  # base fallback

    def test_sampling_probability_consumes_rng(self):
        """sample_prob=1 always probes a uniform rate; 0 never touches RNG."""
        rng = np.random.default_rng(0)
        always = MinstrelController(rng=rng, sample_prob=1.0)
        picks = {always.select_rate("a", "b") for _ in range(200)}
        assert len(picks) > 4  # uniform over the whole table

        never = MinstrelController(rng=np.random.default_rng(0),
                                   sample_prob=0.0)
        assert all(never.select_rate("a", "b") == never.rates[0]
                   for _ in range(50))

    def test_sampling_schedule_reproducible(self):
        seqs = []
        for _ in range(2):
            ctrl = MinstrelController(rng=np.random.default_rng(42))
            ctrl.on_tx_result("a", "b", 24, True, 0)
            seqs.append([ctrl.select_rate("a", "b") for _ in range(100)])
        assert seqs[0] == seqs[1]

    def test_sampling_rate_close_to_nominal(self):
        ctrl = MinstrelController(rng=np.random.default_rng(3),
                                  sample_prob=0.1)
        ctrl.on_tx_result("a", "b", 6, True, 0)  # pin best = 6
        n = 2000
        sampled = sum(ctrl.select_rate("a", "b") != 6 for _ in range(n))
        # Samples land off-best 7/8 of the time: expect ~0.1 * 7/8 * n.
        assert 100 < sampled < 250


class TestSampleRate:
    def test_prefers_lowest_avg_tx_time(self):
        ctrl = SampleRateController()
        ctrl.on_tx_result("a", "b", 54, True, 0, payload_octets=1024)
        ctrl.on_tx_result("a", "b", 6, True, 0, payload_octets=1024)
        assert ctrl.avg_tx_us("a", "b", 54) < ctrl.avg_tx_us("a", "b", 6)
        assert ctrl.best_rate("a", "b") == 54

    def test_avg_time_counts_failed_airtime(self):
        """A lossy fast rate loses to a clean slower one."""
        ctrl = SampleRateController()
        for ok in (True, False, False, False):
            ctrl.on_tx_result("a", "b", 54, ok, 0, payload_octets=1024)
        ctrl.on_tx_result("a", "b", 24, True, 0, payload_octets=1024)
        assert ctrl.best_rate("a", "b") == 24

    def test_deterministic_sampling_every_nth(self):
        ctrl = SampleRateController(sample_every=10)
        ctrl.on_tx_result("a", "b", 24, True, 0, payload_octets=1024)
        picks = [ctrl.select_rate("a", "b") for _ in range(30)]
        sample_positions = [i for i, r in enumerate(picks) if r != 24]
        # Every 10th head-of-queue transmission probes another rate.
        assert sample_positions == [9, 19, 29]

    def test_dead_rates_skipped(self):
        ctrl = SampleRateController(sample_every=2, max_consec_fail=4)
        ctrl.on_tx_result("a", "b", 24, True, 0, payload_octets=1024)
        for _ in range(4):
            ctrl.on_tx_result("a", "b", 54, False, 0, payload_octets=1024)
        probes = {ctrl.select_rate("a", "b") for _ in range(40)}
        assert 54 not in probes

    def test_needs_no_rng(self):
        ctrl = SampleRateController(rng=None)
        assert ctrl.select_rate("a", "b") == ctrl.rates[0]

    def test_retry_ladder(self):
        ctrl = SampleRateController()
        ctrl.on_tx_result("a", "b", 54, True, 0, payload_octets=1024)
        assert ctrl.select_rate("a", "b", retries=1) == 54  # best
        assert ctrl.select_rate("a", "b", retries=2) == ctrl.rates[0]


class TestScenarioIntegration:
    @pytest.mark.parametrize("controller", CONTROLLER_MATRIX)
    def test_serial_and_pool_bit_identical(self, controller):
        spec = small_spec(controller=controller, error_model="surrogate")
        serial = run_scenario_sweep(spec, n_trials=2, seed=11, workers=0)
        pooled = run_scenario_sweep(spec, n_trials=2, seed=11, workers=2)
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in pooled]

    def test_trial_seeds_reproducible(self):
        spec = small_spec(controller="minstrel")
        a = run_scenario_sweep(spec, n_trials=3, seed=5)
        b = run_scenario_sweep(spec, n_trials=3, seed=5)
        assert [r.to_dict() for r in a] == [r.to_dict() for r in b]
        # Per-trial SeedSequence.spawn: trials are *not* clones of each other.
        assert a[0].to_dict() != a[1].to_dict()

    def test_surrogate_error_model_runs(self):
        spec = small_spec(error_model="surrogate")
        result = run_scenario(spec, rng=1)
        assert result.aggregate_goodput_mbps > 0
        assert "controller" not in result.to_dict()

    def test_controller_reported_in_result(self):
        spec = small_spec(controller="samplerate")
        result = run_scenario(spec, rng=1)
        assert result.controller == "samplerate"
        assert result.to_dict()["controller"] == "samplerate"

    def test_unknown_controller_rejected_by_spec(self):
        with pytest.raises(ValueError, match="available"):
            small_spec(controller="nope")

    def test_unknown_error_model_rejected_by_spec(self):
        with pytest.raises(ValueError, match="error_model"):
            small_spec(error_model="exact")

    def test_transport_pinning_overrides_scenario_control(self):
        spec = small_spec(controller="explicit-feedback")  # spec says cos
        result = run_scenario(spec, rng=1)
        assert result.control == "explicit"

    def test_rate_selected_events_and_metric(self):
        from repro.obs.metrics import get_registry

        spec = small_spec(controller="minstrel")
        lens = NetLens(trace=True)
        run_scenario(spec, rng=1, lens=lens)
        rate_events = [e for e in lens.events if e["event"] == "rate_selected"]
        assert rate_events
        assert all(e["controller"] == "minstrel" for e in rate_events)
        metrics = get_registry().to_json()
        assert "repro_ratectl_rate_selected_total" in metrics

    def test_lens_does_not_perturb_run(self):
        spec = small_spec(controller="minstrel", error_model="surrogate")
        bare = run_scenario(spec, rng=3).to_dict()
        observed = run_scenario(spec, rng=3, lens=NetLens(trace=True)).to_dict()
        for lens_only in ("ledger", "profile", "events"):
            observed.pop(lens_only, None)
        assert observed == bare


class TestCrossCell:
    def test_cos_control_crosses_where_data_cannot(self):
        spec = builtin_scenario("cross-cell", n_uplink_packets=120,
                                n_cross_packets=40, duration_us=100_000.0)
        result = run_scenario(spec, rng=1)
        aps = ("ap_west", "ap_east")
        # The cross-cell data flows never decode a single frame...
        assert all(result.per_node[ap].data_delivered == 0 for ap in aps)
        # ...yet CoS control reaches across (overheard silences).
        assert sum(result.per_node[ap].control_delivered for ap in aps) > 0

    def test_explicit_control_dies_with_the_data(self):
        spec = builtin_scenario("cross-cell", n_uplink_packets=120,
                                n_cross_packets=40, duration_us=100_000.0,
                                control="explicit")
        result = run_scenario(spec, rng=1)
        aps = ("ap_west", "ap_east")
        assert all(result.per_node[ap].data_delivered == 0 for ap in aps)
        assert sum(result.per_node[ap].control_delivered for ap in aps) == 0

    def test_shipped_scenario_file_matches_factory(self):
        from pathlib import Path

        from repro.net import ScenarioSpec, cross_cell

        path = Path(__file__).resolve().parent.parent / "scenarios" / "cross_cell.json"
        assert ScenarioSpec.load(str(path)) == cross_cell()

    def test_overhear_flag_gates_the_extension(self):
        spec = builtin_scenario("cross-cell", n_uplink_packets=120,
                                n_cross_packets=40, duration_us=100_000.0)
        gated = dataclasses.replace(spec, cos_overhear=False)
        result = run_scenario(gated, rng=1)
        aps = ("ap_west", "ap_east")
        # Without overhearing no cross-cell feedback is ever generated.
        assert sum(result.per_node[ap].control_generated for ap in aps) == 0


class TestCompareHarness:
    def test_report_shape_and_cos_beats_explicit(self):
        spec = small_spec()
        report = compare_controllers(
            spec, controllers=("cos-feedback", "explicit-feedback"),
            n_trials=2, seed=0,
        )
        assert report["scenario"] == "hidden-node"
        assert report["error_model"] == "surrogate"
        assert set(report["controllers"]) == {"cos-feedback",
                                              "explicit-feedback"}
        cos = report["controllers"]["cos-feedback"]
        explicit = report["controllers"]["explicit-feedback"]
        assert cos["transport"] == "cos"
        assert explicit["transport"] == "explicit"
        # The paper's headline on its canonical scenario: free control
        # messages buy aggregate goodput.
        assert cos["goodput_mbps"] > explicit["goodput_mbps"]
        assert explicit["control_airtime_fraction"] > 0
        assert cos["control_airtime_fraction"] == 0

    def test_unknown_controller_raises(self):
        with pytest.raises(ValueError, match="available"):
            compare_controllers(small_spec(), controllers=("bogus",),
                                n_trials=1)
