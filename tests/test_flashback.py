"""Tests for the Flashback-style intended-interference baseline."""

import numpy as np
import pytest

from repro.channel import IndoorChannel
from repro.cos.flashback import FlashbackDetector, FlashbackTransmitter
from repro.phy import RATE_TABLE, Receiver, Transmitter, build_mpdu


class TestPlanning:
    def test_interval_positions(self):
        tx = FlashbackTransmitter(rng=0)
        plan = tx.plan([0, 0, 1, 0, 0, 0, 0, 0], n_data_symbols=30)
        # First flash at 0; interval 2 -> flash at 3; interval 0 -> at 4.
        assert plan.symbol_indices.tolist() == [0, 3, 4]
        assert plan.embedded_bits.size == 8

    def test_truncates_to_packet(self):
        tx = FlashbackTransmitter(rng=0)
        plan = tx.plan(np.ones(400, dtype=np.uint8), n_data_symbols=10)
        # All-ones intervals (15) never fit a 10-symbol packet.
        assert plan.n_flashes == 0

    def test_mixed_bits_fit(self):
        tx = FlashbackTransmitter(rng=0)
        plan = tx.plan(np.zeros(40, dtype=np.uint8), n_data_symbols=12)
        assert 0 < plan.symbol_indices.max() < 12

    def test_energy_cost(self):
        tx = FlashbackTransmitter(flash_power=64.0, rng=0)
        plan = tx.plan([0, 0, 0, 0], n_data_symbols=10)
        assert tx.energy_cost(plan) == pytest.approx(64.0 * plan.n_flashes)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            FlashbackTransmitter(flash_power=0.0)
        with pytest.raises(ValueError):
            FlashbackDetector(threshold_factor=1.0)


class TestEndToEnd:
    def _run(self, bits, snr_db=15.0, seed=5):
        channel = IndoorChannel.position("B", snr_db=snr_db, seed=seed)
        phy_tx = Transmitter()
        phy_rx = Receiver()
        flash_tx = FlashbackTransmitter(rng=1)
        detector = FlashbackDetector()
        psdu = build_mpdu(bytes(400))
        rate = RATE_TABLE[24]
        frame = phy_tx.transmit(psdu, rate)
        plan = flash_tx.plan(bits, frame.n_data_symbols)
        on_air = flash_tx.apply(frame.waveform, plan)
        received = channel.transmit(on_air)
        detected = detector.detect(received, frame.n_data_symbols)
        recovered = detector.recover_bits(received, frame.n_data_symbols)
        result = phy_rx.receive(received)
        return plan, result, detected, recovered

    def test_flash_positions_detected(self, rng):
        bits = rng.integers(0, 2, 16, dtype=np.uint8)
        plan, _, detected, _ = self._run(bits)
        assert np.array_equal(detected, np.sort(plan.symbol_indices))

    def test_flash_bits_recovered(self, rng):
        bits = rng.integers(0, 2, 16, dtype=np.uint8)
        plan, _, _, recovered = self._run(bits)
        assert np.array_equal(recovered, plan.embedded_bits)

    def test_detectable_flashes_kill_the_packet(self, rng):
        """The §V critique: a flash strong enough to detect puts SIR ~0 dB
        on its whole symbol, and per-symbol interleaving makes that
        unrecoverable — the flashed packet dies."""
        bits = rng.integers(0, 2, 8, dtype=np.uint8)
        _, result, _, _ = self._run(bits)
        assert not result.ok

    def test_gentle_flashes_spare_data_but_vanish(self, rng):
        """The other horn of the dilemma: an 8x flash leaves the data
        decodable but hides below OFDM's own PAPR peaks."""
        channel = IndoorChannel.position("B", snr_db=15.0, seed=5)
        frame = Transmitter().transmit(build_mpdu(bytes(400)), RATE_TABLE[12])
        flash_tx = FlashbackTransmitter(flash_power=8.0, rng=4)
        plan = flash_tx.plan(rng.integers(0, 2, 8, dtype=np.uint8),
                             frame.n_data_symbols)
        received = channel.transmit(flash_tx.apply(frame.waveform, plan))
        assert Receiver().receive(received).ok  # data survives
        detected = FlashbackDetector().detect(received, frame.n_data_symbols)
        assert not np.array_equal(detected, np.sort(plan.symbol_indices))

    def test_flash_degrades_symbol_evm(self, rng):
        """The flashed symbol's subcarriers see ~signal-level extra
        interference — degraded, not erased."""
        channel = IndoorChannel.position("C", snr_db=28.0, seed=3)
        phy_tx = Transmitter()
        phy_rx = Receiver()
        frame = phy_tx.transmit(build_mpdu(bytes(400)), RATE_TABLE[24])
        flash_tx = FlashbackTransmitter(rng=2)
        plan = flash_tx.plan([0, 0, 0, 0], frame.n_data_symbols)
        received = channel.transmit(flash_tx.apply(frame.waveform, plan))
        obs = phy_rx.observe(received)
        err = np.abs(obs.eq_data_grid - frame.data_symbols).mean(axis=1)
        flashed = plan.symbol_indices[0]
        clean = [i for i in range(frame.n_data_symbols) if i not in plan.symbol_indices]
        assert err[flashed] > 3 * np.mean(err[clean])

    def test_flash_energy_vs_cos_savings(self, rng):
        """Per control bit, Flashback *spends* ~16 sample-energies while
        CoS *saves* one data-symbol energy per silence."""
        tx = FlashbackTransmitter(rng=3)
        bits = rng.integers(0, 2, 16, dtype=np.uint8)
        plan = tx.plan(bits, 70)
        assert plan.embedded_bits.size == 16
        energy_per_bit = tx.energy_cost(plan) / 16
        assert energy_per_bit > 10  # CoS's is negative (transmit less)
