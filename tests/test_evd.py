"""Unit tests for erasure Viterbi decoding."""

import numpy as np
import pytest

from repro.cos.evd import ErasureViterbiDecoder, erase_bit_metrics
from repro.phy.params import RATE_TABLE
from repro.phy.plcp import encode_data_field
from repro.phy.modulation import get_modulation


class TestEraseBitMetrics:
    def test_zeroes_masked_symbols(self):
        llrs = np.ones(2 * 48 * 4)
        mask = np.zeros((2, 48), dtype=bool)
        mask[0, 3] = True
        out = erase_bit_metrics(llrs, mask, n_bpsc=4)
        grid = out.reshape(2, 48, 4)
        assert np.all(grid[0, 3] == 0.0)
        assert grid.sum() == llrs.sum() - 4

    def test_input_not_mutated(self):
        llrs = np.ones(48)
        mask = np.zeros((1, 48), dtype=bool)
        mask[0, 0] = True
        erase_bit_metrics(llrs, mask, n_bpsc=1)
        assert llrs[0] == 1.0

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            erase_bit_metrics(np.ones(10), np.zeros((1, 48), dtype=bool), n_bpsc=1)


def _encode_to_grid(psdu, rate):
    coded = encode_data_field(psdu, rate)
    mod = get_modulation(rate.modulation)
    return mod.map_bits(coded).reshape(-1, 48)


class TestErasureViterbiDecoder:
    def test_clean_decode(self, rng):
        rate = RATE_TABLE[24]
        psdu = bytes(rng.integers(0, 256, 60, dtype=np.uint8))
        grid = _encode_to_grid(psdu, rate)
        decoder = ErasureViterbiDecoder(rate)
        decoded = decoder.decode(grid)
        from repro.phy.plcp import build_data_bits

        assert np.array_equal(decoded, build_data_bits(psdu, rate))

    def test_silences_recovered_with_erasure_mask(self, rng):
        rate = RATE_TABLE[24]
        psdu = bytes(rng.integers(0, 256, 60, dtype=np.uint8))
        grid = _encode_to_grid(psdu, rate)
        mask = np.zeros(grid.shape, dtype=bool)
        mask[::2, 10] = True
        mask[1::3, 30] = True
        silenced = np.where(mask, 0.0, grid)
        decoder = ErasureViterbiDecoder(rate)
        decoded = decoder.decode(silenced, erasure_mask=mask)
        from repro.phy.plcp import build_data_bits

        assert np.array_equal(decoded, build_data_bits(psdu, rate))

    def test_error_only_decoding_struggles_at_high_silence_load(self, rng):
        """Without the erasure mask the zero-power symbols act as errors;
        with it they are recovered — the §III-E comparison."""
        rate = RATE_TABLE[36]  # 3/4 code: thin margin
        failures_evd = 0
        failures_err = 0
        for seed in range(8):
            local = np.random.default_rng(seed)
            psdu = bytes(local.integers(0, 256, 80, dtype=np.uint8))
            grid = _encode_to_grid(psdu, rate)
            mask = np.zeros(grid.shape, dtype=bool)
            mask[:, ::5] = True  # silence every 5th subcarrier everywhere
            silenced = np.where(mask, 0.0, grid)
            decoder = ErasureViterbiDecoder(rate)
            from repro.phy.plcp import build_data_bits

            expected = build_data_bits(psdu, rate)
            if not np.array_equal(decoder.decode(silenced, erasure_mask=mask), expected):
                failures_evd += 1
            if not np.array_equal(decoder.decode(silenced), expected):
                failures_err += 1
        assert failures_evd <= failures_err

    def test_single_row_grid(self, rng):
        rate = RATE_TABLE[6]
        psdu = b"ab"
        grid = _encode_to_grid(psdu, rate)
        decoded = ErasureViterbiDecoder(rate).decode(grid)
        from repro.phy.plcp import build_data_bits

        assert np.array_equal(decoded, build_data_bits(psdu, rate))
