"""Tests for :mod:`repro.engine.store` — the content-addressed trial cache.

The determinism property under test: a store-cached replay of a sweep is
bit-for-bit identical to a fresh run, across ``run_sweep`` and
``run_batched_sweep``, because trial results are pure functions of
``(trial fn, params, seed)`` and the key hashes exactly those.
"""

import dataclasses
import json
import os
import pickle

import numpy as np
import pytest

from repro import engine
from repro.engine import store as store_mod
from repro.engine.spec import make_specs
from repro.engine.store import (
    ResultStore,
    UncacheableSpec,
    canonical,
    resolve_store,
    set_default_store,
    spec_key,
)
from repro.obs.metrics import MetricsRegistry, set_registry


@pytest.fixture(autouse=True)
def _no_ambient_store(monkeypatch):
    """Neither REPRO_STORE nor a prior set_default_store may leak in."""
    monkeypatch.delenv(store_mod.STORE_ENV, raising=False)
    previous_explicit = store_mod._default_explicit
    previous_store = store_mod._default_store
    store_mod._default_explicit = False
    store_mod._default_store = None
    old_registry = set_registry(MetricsRegistry())
    yield
    store_mod._default_explicit = previous_explicit
    store_mod._default_store = previous_store
    set_registry(old_registry)


# ---------------------------------------------------------------------------
# Module-level trial functions (stable dotted names for cache keys).
# ---------------------------------------------------------------------------

def _draw_trial(spec):
    rng = spec.rng()
    return (spec["x"], float(rng.normal()), rng.integers(0, 1 << 30).item())


def _batched_draw(specs):
    return [_draw_trial(s) for s in specs]


def _object_param_trial(spec):
    return spec["x"]


@dataclasses.dataclass(frozen=True)
class _Config:
    snr_db: float
    payload: bytes


# ---------------------------------------------------------------------------
# Canonicalisation
# ---------------------------------------------------------------------------

class TestCanonical:
    def test_dict_key_order_is_irrelevant(self):
        a = canonical({"b": 1, "a": 2})
        b = canonical({"a": 2, "b": 1})
        assert a == b

    def test_scalars_and_containers_round_trip_to_json(self):
        obj = {"f": 0.1, "i": 3, "s": "x", "t": (1, 2), "n": None,
               "set": {3, 1, 2}, "b": b"\x00\xff"}
        text = json.dumps(canonical(obj), sort_keys=True)
        assert text == json.dumps(canonical(dict(obj)), sort_keys=True)

    def test_float_precision_survives(self):
        assert canonical(0.1) == canonical(0.1 + 1e-17 * 0)  # same value
        assert canonical(1.0) != canonical(1.0 + 1e-15)

    def test_ndarray_by_content(self):
        a = canonical(np.arange(4, dtype=np.float64))
        b = canonical(np.arange(4, dtype=np.float64))
        c = canonical(np.arange(4, dtype=np.float32))
        assert a == b
        assert a != c  # dtype is part of the rendering

    def test_numpy_scalars_match_python_scalars(self):
        assert canonical(np.int64(5)) == canonical(5)

    def test_dataclass_by_type_and_fields(self):
        a = canonical(_Config(snr_db=10.0, payload=b"hi"))
        b = canonical(_Config(snr_db=10.0, payload=b"hi"))
        c = canonical(_Config(snr_db=11.0, payload=b"hi"))
        assert a == b
        assert a != c

    def test_arbitrary_objects_are_uncacheable(self):
        class Opaque:
            pass

        with pytest.raises(UncacheableSpec):
            canonical(Opaque())


# ---------------------------------------------------------------------------
# Key derivation
# ---------------------------------------------------------------------------

class TestSpecKey:
    def test_index_does_not_affect_key(self):
        salt = {"schema": 1}
        sub = make_specs([{"x": 5}], seed=0)[0]
        # The same params at a different position in a superset sweep:
        sup = make_specs([{"x": 5}, {"x": 6}], seed=0)[0]
        assert spec_key(_draw_trial, sub, salt) == spec_key(_draw_trial, sup, salt)

    def test_seed_params_fn_and_salt_all_matter(self):
        salt = {"schema": 1}
        base = spec_key(_draw_trial, make_specs([{"x": 5}], seed=0)[0], salt)
        assert spec_key(_draw_trial, make_specs([{"x": 5}], seed=1)[0],
                        salt) != base
        assert spec_key(_draw_trial, make_specs([{"x": 6}], seed=0)[0],
                        salt) != base
        assert spec_key(_object_param_trial, make_specs([{"x": 5}], seed=0)[0],
                        salt) != base
        assert spec_key(_draw_trial, make_specs([{"x": 5}], seed=0)[0],
                        {"schema": 2}) != base

    def test_lambdas_are_uncacheable(self):
        spec = make_specs([{"x": 5}], seed=0)[0]
        with pytest.raises(UncacheableSpec):
            spec_key(lambda s: 0, spec, {"schema": 1})


# ---------------------------------------------------------------------------
# The store itself
# ---------------------------------------------------------------------------

class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "ab" + "0" * 62
        assert store.get(key) == (False, None)
        assert store.put(key, {"value": 42})
        assert store.get(key) == (True, {"value": 42})
        assert len(store) == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = "cd" + "0" * 62
        store.put(key, [1, 2, 3])
        path = store._path(key)
        path.write_bytes(b"not a pickle")
        hit, _ = store.get(key)
        assert hit is False

    def test_unpicklable_value_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.put("ef" + "0" * 62, lambda: None) is False
        assert len(store) == 0

    def test_meta_file_written(self, tmp_path):
        ResultStore(tmp_path)
        meta = json.loads((tmp_path / "store-meta.json").read_text())
        assert meta["schema"] == store_mod.STORE_SCHEMA


class TestResolveStore:
    def test_false_disables_none_defers_instance_passes(self, tmp_path):
        assert resolve_store(False) is None
        assert resolve_store(None) is None  # no default configured
        store = ResultStore(tmp_path)
        assert resolve_store(store) is store

    def test_true_requires_a_configured_default(self, tmp_path):
        with pytest.raises(ValueError, match="REPRO_STORE"):
            resolve_store(True)
        store = ResultStore(tmp_path)
        set_default_store(store)
        assert resolve_store(True) is store

    def test_env_flag_enables_the_default_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(store_mod.STORE_ENV, str(tmp_path / "cache"))
        store = resolve_store(None)
        assert store is not None
        assert store.root == tmp_path / "cache"
        # Explicit None (the CLI's --no-store) beats the env flag.
        set_default_store(None)
        assert resolve_store(None) is None


# ---------------------------------------------------------------------------
# Engine integration: cached replay == fresh run, bit for bit
# ---------------------------------------------------------------------------

PARAMS = [{"x": i} for i in range(9)]


class TestSweepReplay:
    def test_run_sweep_cold_then_warm_is_bit_for_bit(self, tmp_path):
        fresh = engine.run_sweep(PARAMS, _draw_trial, seed=11)
        store = ResultStore(tmp_path)
        cold = engine.run_sweep(PARAMS, _draw_trial, seed=11, store=store)
        warm = engine.run_sweep(PARAMS, _draw_trial, seed=11, store=store)
        assert pickle.dumps(cold) == pickle.dumps(fresh)
        assert pickle.dumps(warm) == pickle.dumps(fresh)
        assert store.writes == len(PARAMS)
        assert store.hits == len(PARAMS)

    def test_store_counters_reach_the_registry(self, tmp_path):
        registry = MetricsRegistry()
        store = ResultStore(tmp_path)
        engine.run_sweep(PARAMS, _draw_trial, seed=11, store=store,
                         registry=registry)
        engine.run_sweep(PARAMS, _draw_trial, seed=11, store=store,
                         registry=registry)
        assert registry.counter("repro_store_hits_total").value == len(PARAMS)
        assert registry.counter("repro_store_misses_total").value == len(PARAMS)

    def test_superset_sweep_re_hits_subset_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        engine.run_sweep(PARAMS[:4], _draw_trial, seed=11, store=store)
        sup = engine.run_sweep(PARAMS, _draw_trial, seed=11, store=store)
        # Seed spawning is positional, so the first 4 specs are identical
        # and must replay rather than re-execute.
        assert store.hits == 4
        assert sup == engine.run_sweep(PARAMS, _draw_trial, seed=11)

    def test_partial_store_executes_only_the_delta(self, tmp_path):
        store = ResultStore(tmp_path)
        engine.run_sweep(PARAMS, _draw_trial, seed=11, store=store)
        # Drop a few entries to simulate an interrupted earlier run.
        objects = sorted(store.root.glob("objects/*/*.pkl"))
        for path in objects[:3]:
            path.unlink()
        store.hits = store.writes = 0
        again = engine.run_sweep(PARAMS, _draw_trial, seed=11, store=store)
        assert again == engine.run_sweep(PARAMS, _draw_trial, seed=11)
        assert store.hits == len(PARAMS) - 3
        assert store.writes == 3

    def test_workers_pool_with_store_matches_serial(self, tmp_path):
        fresh = engine.run_sweep(PARAMS, _draw_trial, seed=11)
        store = ResultStore(tmp_path)
        pooled = engine.run_sweep(PARAMS, _draw_trial, seed=11, workers=2,
                                  store=store)
        warm = engine.run_sweep(PARAMS, _draw_trial, seed=11, workers=2,
                                store=store)
        assert pooled == fresh
        assert warm == fresh
        assert store.hits == len(PARAMS)

    def test_uncacheable_params_still_run(self, tmp_path):
        class Opaque:
            pass

        store = ResultStore(tmp_path)
        params = [{"x": 1, "obj": Opaque()}]
        out = engine.run_sweep(params, _object_param_trial, seed=0, store=store)
        assert out == [1]
        assert store.writes == 0
        # And a re-run executes again (permanent miss, not a crash).
        out2 = engine.run_sweep(params, _object_param_trial, seed=0, store=store)
        assert out2 == [1]

    def test_salt_change_invalidates(self, tmp_path):
        a = ResultStore(tmp_path, salt={"schema": 1})
        engine.run_sweep(PARAMS[:3], _draw_trial, seed=11, store=a)
        b = ResultStore(tmp_path, salt={"schema": 2})
        engine.run_sweep(PARAMS[:3], _draw_trial, seed=11, store=b)
        assert b.hits == 0
        assert b.writes == 3

    def test_profile_tables_rotate_the_salt(self, monkeypatch):
        """Pointing REPRO_SURROGATE_TABLE at a profile table changes the
        store salt, so cached trials can never replay across channel
        profiles — no store-side special case needed."""
        from repro.engine.store import store_salt
        from repro.phy.surrogate import profile_table_path

        fingerprints = set()
        for profile in ("A", "B", "C"):
            path = profile_table_path(profile)
            assert path.exists(), f"profile {profile} table not committed"
            monkeypatch.setenv("REPRO_SURROGATE_TABLE", str(path))
            fingerprints.add(store_salt()["surrogate_table"])
        assert len(fingerprints) == 3


class TestBatchedSweepReplay:
    def test_batched_cold_then_warm_is_bit_for_bit(self, tmp_path):
        fresh = engine.run_batched_sweep(PARAMS, _batched_draw, seed=11)
        store = ResultStore(tmp_path)
        cold = engine.run_batched_sweep(PARAMS, _batched_draw, seed=11,
                                        store=store)
        warm = engine.run_batched_sweep(PARAMS, _batched_draw, seed=11,
                                        store=store)
        assert pickle.dumps(cold) == pickle.dumps(fresh)
        assert pickle.dumps(warm) == pickle.dumps(fresh)
        assert store.hits == len(PARAMS)

    def test_batched_and_unbatched_share_no_entries(self, tmp_path):
        # Different trial callables → different keys, by design: the
        # batch fn is part of the result's identity.
        store = ResultStore(tmp_path)
        engine.run_sweep(PARAMS, _draw_trial, seed=11, store=store)
        engine.run_batched_sweep(PARAMS, _batched_draw, seed=11, store=store)
        assert store.hits == 0
        assert store.writes == 2 * len(PARAMS)

    def test_batched_partial_store_mixes_hits_and_fresh_members(self, tmp_path):
        store = ResultStore(tmp_path)
        engine.run_batched_sweep(PARAMS[:5], _batched_draw, seed=11,
                                 store=store)
        store.hits = 0
        out = engine.run_batched_sweep(PARAMS, _batched_draw, seed=11,
                                       store=store)
        assert out == engine.run_batched_sweep(PARAMS, _batched_draw, seed=11)
        assert store.hits == 5
