"""Unit tests for repro.utils.crc."""

import zlib

import pytest

from repro.utils.crc import FCS_LEN, append_fcs, check_fcs, crc32


class TestCrc32:
    def test_matches_zlib(self):
        for data in (b"", b"a", b"hello world", bytes(range(256)) * 3):
            assert crc32(data) == zlib.crc32(data)

    def test_known_value(self):
        # CRC-32 of "123456789" is the classic check value 0xCBF43926.
        assert crc32(b"123456789") == 0xCBF43926

    def test_sensitive_to_single_bit(self):
        assert crc32(b"\x00") != crc32(b"\x01")


class TestFcs:
    def test_append_and_check(self):
        frame = append_fcs(b"payload")
        assert len(frame) == 7 + FCS_LEN
        assert check_fcs(frame)

    def test_corruption_detected(self):
        frame = bytearray(append_fcs(b"payload"))
        frame[0] ^= 0x01
        assert not check_fcs(bytes(frame))

    def test_corrupted_fcs_detected(self):
        frame = bytearray(append_fcs(b"payload"))
        frame[-1] ^= 0x80
        assert not check_fcs(bytes(frame))

    def test_too_short_frames(self):
        assert not check_fcs(b"")
        assert not check_fcs(b"abc")

    def test_every_byte_position_matters(self):
        base = append_fcs(bytes(range(32)))
        for i in range(len(base)):
            corrupted = bytearray(base)
            corrupted[i] ^= 0xFF
            assert not check_fcs(bytes(corrupted)), f"corruption at byte {i} missed"
