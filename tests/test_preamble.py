"""Unit tests for the PLCP preamble, channel estimation and sync."""

import numpy as np
import pytest

from repro.channel.multipath import TappedDelayLine
from repro.phy.ofdm import DATA_BINS
from repro.phy.preamble import (
    LTF_SAMPLES,
    PREAMBLE_SAMPLES,
    STF_SAMPLES,
    estimate_channel,
    estimate_noise_from_ltf,
    generate_preamble,
    ltf_frequency_symbol,
    stf_frequency_symbol,
    synchronize,
)


class TestGeneration:
    def test_length(self):
        assert generate_preamble().size == PREAMBLE_SAMPLES == 320
        assert STF_SAMPLES + LTF_SAMPLES == PREAMBLE_SAMPLES

    def test_stf_periodicity(self):
        """The short training field repeats every 16 samples."""
        pre = generate_preamble()
        stf = pre[:STF_SAMPLES]
        assert np.allclose(stf[:16], stf[16:32], atol=1e-12)
        assert np.allclose(stf[:16], stf[144:160], atol=1e-12)

    def test_ltf_twins_identical(self):
        pre = generate_preamble()
        first = pre[STF_SAMPLES + 32 : STF_SAMPLES + 32 + 64]
        second = pre[STF_SAMPLES + 32 + 64 :]
        assert np.allclose(first, second, atol=1e-12)

    def test_ltf_sequence_is_pm_one_on_used_bins(self):
        ltf = ltf_frequency_symbol()
        used = ltf != 0
        assert used.sum() == 52
        assert np.allclose(np.abs(ltf[used]), 1.0)

    def test_stf_uses_every_fourth_subcarrier(self):
        stf = stf_frequency_symbol()
        nonzero = np.nonzero(stf)[0]
        assert len(nonzero) == 12
        logical = [(b + 32) % 64 - 32 for b in nonzero]
        assert all(k % 4 == 0 for k in logical)


class TestChannelEstimation:
    def test_identity_channel(self):
        h = estimate_channel(generate_preamble())
        used = ltf_frequency_symbol() != 0
        assert np.allclose(h[used], 1.0, atol=1e-10)

    def test_known_multipath(self, rng):
        tdl = TappedDelayLine.from_profile(4, 1.0, rng)
        received = tdl.apply(generate_preamble())
        h = estimate_channel(received)
        truth = tdl.frequency_response()
        assert np.allclose(h[DATA_BINS], truth[DATA_BINS], atol=1e-8)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            estimate_channel(np.zeros(100, dtype=complex))


class TestNoiseEstimation:
    def test_noiseless_floor_near_zero(self):
        assert estimate_noise_from_ltf(generate_preamble()) < 1e-20

    def test_estimates_injected_noise(self, rng):
        estimates = []
        true_var = 0.04
        for seed in range(30):
            local = np.random.default_rng(seed)
            noisy = generate_preamble() + np.sqrt(true_var / 2) * (
                local.standard_normal(PREAMBLE_SAMPLES)
                + 1j * local.standard_normal(PREAMBLE_SAMPLES)
            )
            estimates.append(estimate_noise_from_ltf(noisy))
        # The LTF-difference estimator reports per-subcarrier variance,
        # which for our scaling is time variance * 52/64.
        expected = true_var * 52 / 64
        assert np.mean(estimates) == pytest.approx(expected, rel=0.2)


class TestSynchronize:
    def test_finds_zero_offset(self):
        pre = generate_preamble()
        samples = np.concatenate([pre, np.zeros(200, dtype=complex)])
        assert abs(synchronize(samples)) <= 1

    def test_finds_shifted_frame(self, rng):
        pre = generate_preamble()
        offset = 73
        samples = np.concatenate(
            [
                0.01 * (rng.standard_normal(offset) + 1j * rng.standard_normal(offset)),
                pre,
                np.zeros(100, dtype=complex),
            ]
        )
        assert abs(synchronize(samples) - offset) <= 1

    def test_robust_to_moderate_noise(self, rng):
        pre = generate_preamble()
        offset = 40
        samples = np.concatenate([np.zeros(offset, dtype=complex), pre, np.zeros(80, dtype=complex)])
        samples = samples + 0.2 * (
            rng.standard_normal(samples.size) + 1j * rng.standard_normal(samples.size)
        )
        assert abs(synchronize(samples) - offset) <= 2
