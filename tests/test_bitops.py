"""Unit tests for repro.utils.bitops."""

import numpy as np
import pytest

from repro.utils.bitops import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    int_to_bits,
    pad_bits,
    random_bits,
)


class TestBytesBits:
    def test_lsb_first_expansion(self):
        assert bytes_to_bits(b"\x01").tolist() == [1, 0, 0, 0, 0, 0, 0, 0]
        assert bytes_to_bits(b"\x80").tolist() == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_roundtrip(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_empty(self):
        assert bytes_to_bits(b"").size == 0
        assert bits_to_bytes(np.zeros(0, dtype=np.uint8)) == b""

    def test_non_octet_rejected(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.ones(7, dtype=np.uint8))

    def test_dtype(self):
        assert bytes_to_bits(b"\xff").dtype == np.uint8


class TestIntBits:
    def test_lsb_first(self):
        assert int_to_bits(6, 4).tolist() == [0, 1, 1, 0]

    def test_msb_first_matches_paper_example(self):
        # The paper maps "0010" -> 2 and "0110" -> 6 (MSB first).
        assert int_to_bits(2, 4, lsb_first=False).tolist() == [0, 0, 1, 0]
        assert int_to_bits(6, 4, lsb_first=False).tolist() == [0, 1, 1, 0]
        assert int_to_bits(7, 4, lsb_first=False).tolist() == [0, 1, 1, 1]

    def test_roundtrip_both_orders(self):
        for value in (0, 1, 5, 14, 15):
            for order in (True, False):
                bits = int_to_bits(value, 4, lsb_first=order)
                assert bits_to_int(bits, lsb_first=order) == value

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_full_width(self):
        assert bits_to_int(int_to_bits(65535, 16)) == 65535


class TestPadBits:
    def test_no_padding_needed(self):
        bits = np.array([1, 0, 1, 0], dtype=np.uint8)
        assert pad_bits(bits, 4).tolist() == [1, 0, 1, 0]

    def test_pads_with_zeros(self):
        assert pad_bits(np.array([1], dtype=np.uint8), 4).tolist() == [1, 0, 0, 0]

    def test_pads_with_value(self):
        assert pad_bits(np.array([0], dtype=np.uint8), 3, value=1).tolist() == [0, 1, 1]


class TestRandomBits:
    def test_reproducible(self):
        a = random_bits(100, np.random.default_rng(1))
        b = random_bits(100, np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_values_binary(self):
        bits = random_bits(1000, np.random.default_rng(2))
        assert set(np.unique(bits)) <= {0, 1}

    def test_roughly_balanced(self):
        bits = random_bits(10000, np.random.default_rng(3))
        assert 0.45 < bits.mean() < 0.55
