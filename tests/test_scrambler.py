"""Unit tests for the 802.11a scrambler and pilot polarity sequence."""

import numpy as np
import pytest

from repro.phy.scrambler import Scrambler, pilot_polarity_sequence, scrambler_sequence


class TestScramblerSequence:
    def test_period_127(self):
        seq = scrambler_sequence(254, 0b1111111)
        assert np.array_equal(seq[:127], seq[127:])

    def test_first_bits_of_all_ones_seed(self):
        # Clause 18.3.5.5: the all-ones seed starts 0000 1110 1111 ...
        seq = scrambler_sequence(16, 0b1111111)
        assert seq[:8].tolist() == [0, 0, 0, 0, 1, 1, 1, 0]

    def test_balanced_over_period(self):
        seq = scrambler_sequence(127, 0b1111111)
        # A maximal-length 7-bit LFSR emits 64 ones and 63 zeros per period.
        assert int(seq.sum()) == 64

    def test_nonzero_state_required(self):
        with pytest.raises(ValueError):
            scrambler_sequence(10, 0)
        with pytest.raises(ValueError):
            scrambler_sequence(10, 128)

    def test_different_states_shift_sequence(self):
        a = scrambler_sequence(127, 0b1111111)
        b = scrambler_sequence(127, 0b1010101)
        assert not np.array_equal(a, b)
        # ... but one is a cyclic shift of the other (same m-sequence).
        doubled = np.concatenate([a, a])
        assert any(
            np.array_equal(doubled[s : s + 127], b) for s in range(127)
        )


class TestScrambler:
    def test_involution(self, rng):
        bits = rng.integers(0, 2, 500, dtype=np.uint8)
        scrambled = Scrambler(0b1011101).scramble(bits)
        assert np.array_equal(Scrambler(0b1011101).scramble(scrambled), bits)

    def test_actually_changes_bits(self):
        bits = np.zeros(100, dtype=np.uint8)
        assert Scrambler().scramble(bits).sum() > 0

    def test_state_recovery(self):
        for state in (1, 17, 0b1011101, 127):
            service = np.zeros(7, dtype=np.uint8)
            scrambled = Scrambler(state).scramble(service)
            assert Scrambler.recover_state(scrambled) == state

    def test_recovery_requires_seven_bits(self):
        with pytest.raises(ValueError):
            Scrambler.recover_state(np.zeros(3, dtype=np.uint8))

    def test_all_zero_prefix_unreachable(self):
        # No non-zero state produces seven consecutive zero outputs.
        with pytest.raises(ValueError):
            Scrambler.recover_state(np.zeros(7, dtype=np.uint8))

    def test_invalid_state(self):
        with pytest.raises(ValueError):
            Scrambler(0)


class TestPilotPolarity:
    def test_values_pm_one(self):
        seq = pilot_polarity_sequence(300)
        assert set(np.unique(seq)) <= {-1.0, 1.0}

    def test_cyclic_extension(self):
        seq = pilot_polarity_sequence(254)
        assert np.array_equal(seq[:127], seq[127:254])

    def test_first_symbol_positive(self):
        # p_0 = +1 (the SIGNAL symbol's pilots are not inverted).
        assert pilot_polarity_sequence(1)[0] == 1.0

    def test_length(self):
        assert pilot_polarity_sequence(5).shape == (5,)
