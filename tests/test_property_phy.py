"""Property-based tests for the PHY component chain."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.convcode import conv_encode, depuncture, puncture
from repro.phy.interleaver import deinterleave, interleave
from repro.phy.modulation import get_modulation
from repro.phy.params import RATE_TABLE
from repro.phy.scrambler import Scrambler
from repro.phy.viterbi import ViterbiDecoder, hard_bits_to_llrs

rates = st.sampled_from(sorted(RATE_TABLE))
modulations = st.sampled_from(["bpsk", "qpsk", "16qam", "64qam"])


class TestScramblerProperties:
    @given(st.lists(st.integers(0, 1), max_size=300), st.integers(1, 127))
    @settings(max_examples=40)
    def test_involution(self, bits, state):
        arr = np.array(bits, dtype=np.uint8)
        once = Scrambler(state).scramble(arr)
        twice = Scrambler(state).scramble(once)
        assert np.array_equal(twice, arr)


class TestCodingProperties:
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=200))
    @settings(max_examples=30)
    def test_viterbi_inverts_encoder(self, bits):
        info = np.array(bits + [0] * 6, dtype=np.uint8)
        decoded = ViterbiDecoder().decode(hard_bits_to_llrs(conv_encode(info)))
        assert np.array_equal(decoded, info)

    @given(rates, st.data())
    @settings(max_examples=30)
    def test_puncture_depuncture_positions(self, mbps, data):
        rate = RATE_TABLE[mbps]
        n_pairs = data.draw(st.integers(1, 20)) * 6  # whole periods for all rates
        coded = np.arange(2 * n_pairs, dtype=np.float64)
        sent = puncture(coded, rate.code_rate)
        restored = depuncture(sent, rate.code_rate, fill=-1.0)
        kept = restored != -1.0
        assert np.array_equal(restored[kept], coded[kept])


class TestInterleaverProperties:
    @given(rates, st.integers(1, 4), st.data())
    @settings(max_examples=30)
    def test_roundtrip(self, mbps, n_blocks, data):
        rate = RATE_TABLE[mbps]
        bits = np.array(
            data.draw(
                st.lists(
                    st.integers(0, 1),
                    min_size=n_blocks * rate.n_cbps,
                    max_size=n_blocks * rate.n_cbps,
                )
            ),
            dtype=np.uint8,
        )
        assert np.array_equal(deinterleave(interleave(bits, rate), rate), bits)


class TestModulationProperties:
    @given(modulations, st.data())
    @settings(max_examples=40)
    def test_map_demap_roundtrip(self, name, data):
        mod = get_modulation(name)
        n = data.draw(st.integers(1, 50)) * mod.bits_per_symbol
        bits = np.array(
            data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)),
            dtype=np.uint8,
        )
        assert np.array_equal(mod.demap_hard(mod.map_bits(bits)), bits)

    @given(modulations, st.data())
    @settings(max_examples=30)
    def test_soft_demap_agrees_with_hard(self, name, data):
        mod = get_modulation(name)
        n = data.draw(st.integers(1, 30)) * mod.bits_per_symbol
        bits = np.array(
            data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)),
            dtype=np.uint8,
        )
        symbols = mod.map_bits(bits)
        llr_hard = (mod.demap_soft(symbols) < 0).astype(np.uint8)
        assert np.array_equal(llr_hard, bits)

    @given(modulations)
    def test_constellation_energy_normalised(self, name):
        mod = get_modulation(name)
        assert abs(np.mean(np.abs(mod.constellation) ** 2) - 1.0) < 1e-9


class TestEndToEndBitPipeline:
    @given(rates, st.binary(min_size=1, max_size=120))
    @settings(max_examples=20, deadline=None)
    def test_plcp_pipeline_roundtrip(self, mbps, psdu):
        from repro.phy.plcp import decode_data_field, encode_data_field

        rate = RATE_TABLE[mbps]
        coded = encode_data_field(psdu, rate)
        decoded = decode_data_field(hard_bits_to_llrs(coded), rate, len(psdu))
        assert decoded.psdu == psdu
