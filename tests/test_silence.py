"""Unit tests for the silence planner (power controller)."""

import numpy as np
import pytest

from repro.cos.intervals import IntervalCodec
from repro.cos.silence import DEFAULT_CONTROL_SUBCARRIERS, SilencePlanner


class TestConstruction:
    def test_default_subcarriers(self):
        planner = SilencePlanner()
        assert planner.control_subcarriers == sorted(DEFAULT_CONTROL_SUBCARRIERS)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            SilencePlanner([1, 1, 2])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SilencePlanner([48])
        with pytest.raises(ValueError):
            SilencePlanner([-1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SilencePlanner([])


class TestFig1Example:
    def test_scan_order_matches_figure(self):
        """Fig. 1(a): with 6 control subcarriers, a silence at (slot 1,
        subcarrier 4) followed by interval 6 lands at (slot 2, subcarrier 5)."""
        planner = SilencePlanner(list(range(6)))
        # position of (slot 0, subcarrier 3) in the stream is 3;
        # interval 6 -> next position 3 + 7 = 10 -> slot 1, subcarrier 4.
        slot, sub = planner._position_to_cell(10)
        assert (slot, sub) == (1, 4)


class TestPlanning:
    def test_plan_recover_roundtrip(self, rng):
        planner = SilencePlanner(list(range(8, 16)))
        for _ in range(10):
            bits = rng.integers(0, 2, 32, dtype=np.uint8)
            plan = planner.plan(bits, n_symbols=40)
            assert plan.embedded_bits.size == 32
            recovered = planner.recover_bits(plan.mask)
            assert np.array_equal(recovered, bits)

    def test_mask_shape_and_location(self):
        planner = SilencePlanner([4, 20])
        plan = planner.plan(np.zeros(4, dtype=np.uint8), n_symbols=10)
        assert plan.mask.shape == (10, 48)
        silent_cols = set(np.nonzero(plan.mask)[1].tolist())
        assert silent_cols <= {4, 20}

    def test_silence_count(self, rng):
        planner = SilencePlanner(list(range(6)))
        bits = rng.integers(0, 2, 16, dtype=np.uint8)
        plan = planner.plan(bits, n_symbols=30)
        assert plan.n_silences == 5  # start marker + 4 intervals
        assert plan.mask.sum() == 5

    def test_truncates_to_fit(self):
        """Bits that do not fit stay unembedded (carried to next packet)."""
        planner = SilencePlanner([0])
        bits = np.zeros(400, dtype=np.uint8)
        bits[3::4] = 1  # each interval = 1 -> 2 positions per group
        plan = planner.plan(bits, n_symbols=9)
        assert 0 < plan.embedded_bits.size < 400
        assert np.array_equal(
            planner.recover_bits(plan.mask), plan.embedded_bits
        )

    def test_empty_message(self):
        planner = SilencePlanner()
        plan = planner.plan([], n_symbols=10)
        assert plan.n_silences == 0
        assert not plan.mask.any()

    def test_non_multiple_of_k_truncated(self):
        planner = SilencePlanner()
        plan = planner.plan([1, 0, 1], n_symbols=10)  # < k bits
        assert plan.embedded_bits.size == 0

    def test_zero_symbols(self):
        plan = SilencePlanner().plan([1, 0, 1, 0], n_symbols=0)
        assert plan.n_silences == 0


class TestCapacity:
    def test_stream_length(self):
        assert SilencePlanner(list(range(6))).stream_length(10) == 60

    def test_worst_vs_expected(self):
        planner = SilencePlanner(list(range(8)))
        worst = planner.capacity_bits(30, worst_case=True)
        expected = planner.capacity_bits(30, worst_case=False)
        assert worst < expected
        assert worst % planner.codec.k == 0

    def test_capacity_achievable(self, rng):
        """A message at the worst-case capacity always fits."""
        planner = SilencePlanner(list(range(8)))
        n_bits = planner.capacity_bits(30, worst_case=True)
        bits = np.ones(n_bits, dtype=np.uint8)  # all intervals maximal
        plan = planner.plan(bits, n_symbols=30)
        assert plan.embedded_bits.size == n_bits


class TestMaskToPositions:
    def test_ignores_non_control_subcarriers(self):
        planner = SilencePlanner([5])
        mask = np.zeros((4, 48), dtype=bool)
        mask[0, 5] = True
        mask[1, 7] = True  # not a control subcarrier
        assert planner.mask_to_positions(mask) == [0]
