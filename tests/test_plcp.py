"""Unit tests for the PLCP SIGNAL field and DATA bit pipeline."""

import numpy as np
import pytest

from repro.phy.params import RATE_TABLE, SERVICE_BITS, TAIL_BITS
from repro.phy.plcp import (
    build_data_bits,
    decode_data_field,
    decode_signal_bits,
    encode_data_field,
    encode_signal_bits,
    signal_bits_to_symbols,
    signal_llrs_to_field,
)
from repro.phy.viterbi import hard_bits_to_llrs


class TestSignalField:
    @pytest.mark.parametrize("mbps", sorted(RATE_TABLE))
    def test_roundtrip_all_rates(self, mbps):
        rate = RATE_TABLE[mbps]
        bits = encode_signal_bits(rate, 1024)
        field = decode_signal_bits(bits)
        assert field is not None
        assert field.rate.mbps == mbps
        assert field.length == 1024

    def test_parity_failure_returns_none(self):
        bits = encode_signal_bits(RATE_TABLE[24], 100)
        bits[5] ^= 1
        assert decode_signal_bits(bits) is None

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            encode_signal_bits(RATE_TABLE[24], 0)
        with pytest.raises(ValueError):
            encode_signal_bits(RATE_TABLE[24], 4096)

    def test_tail_bits_zero(self):
        bits = encode_signal_bits(RATE_TABLE[6], 37)
        assert not bits[18:].any()

    def test_symbol_count(self):
        symbols = signal_bits_to_symbols(encode_signal_bits(RATE_TABLE[36], 500))
        assert symbols.size == 48  # one BPSK OFDM symbol

    def test_symbols_decode_back(self):
        bits = encode_signal_bits(RATE_TABLE[48], 777)
        symbols = signal_bits_to_symbols(bits)
        llrs = hard_bits_to_llrs((symbols.real > 0).astype(np.uint8))
        field = signal_llrs_to_field(llrs)
        assert field is not None and field.length == 777 and field.rate.mbps == 48

    def test_n_data_symbols(self):
        field = decode_signal_bits(encode_signal_bits(RATE_TABLE[24], 1024))
        # 16 + 8192 + 6 = 8214 bits over 96 dbps -> 86 symbols.
        assert field.n_data_symbols == 86


class TestDataBits:
    def test_length_is_whole_symbols(self):
        for mbps, rate in RATE_TABLE.items():
            bits = build_data_bits(b"x" * 100, rate)
            assert bits.size % rate.n_dbps == 0

    def test_tail_and_pad_zero_after_scrambling(self):
        rate = RATE_TABLE[24]
        psdu = b"y" * 57
        bits = build_data_bits(psdu, rate)
        tail_start = SERVICE_BITS + 8 * len(psdu)
        assert not bits[tail_start:].any()

    def test_service_prefix_reveals_state(self):
        from repro.phy.scrambler import Scrambler

        bits = build_data_bits(b"z" * 10, RATE_TABLE[12], scrambler_state=0b0110011)
        assert Scrambler.recover_state(bits[:7]) == 0b0110011


class TestDataFieldPipeline:
    @pytest.mark.parametrize("mbps", sorted(RATE_TABLE))
    def test_clean_roundtrip(self, mbps, rng):
        rate = RATE_TABLE[mbps]
        psdu = bytes(rng.integers(0, 256, 121, dtype=np.uint8))
        coded = encode_data_field(psdu, rate)
        assert coded.size % rate.n_cbps == 0
        decoded = decode_data_field(hard_bits_to_llrs(coded), rate, len(psdu))
        assert decoded.psdu == psdu

    def test_roundtrip_with_erasures(self, rng):
        rate = RATE_TABLE[12]
        psdu = bytes(rng.integers(0, 256, 200, dtype=np.uint8))
        llrs = hard_bits_to_llrs(encode_data_field(psdu, rate))
        idx = rng.choice(llrs.size, size=llrs.size // 10, replace=False)
        llrs[idx] = 0.0
        assert decode_data_field(llrs, rate, len(psdu)).psdu == psdu

    def test_scrambled_bits_reencode_to_same_waveform(self, rng):
        """DecodedData.scrambled_bits must regenerate the coded stream."""
        from repro.phy.convcode import conv_encode, puncture
        from repro.phy.interleaver import interleave

        rate = RATE_TABLE[36]
        psdu = bytes(rng.integers(0, 256, 90, dtype=np.uint8))
        coded = encode_data_field(psdu, rate)
        decoded = decode_data_field(hard_bits_to_llrs(coded), rate, len(psdu))
        recoded = interleave(
            puncture(conv_encode(decoded.scrambled_bits), rate.code_rate), rate
        )
        assert np.array_equal(recoded, coded)

    def test_garbage_does_not_crash(self, rng):
        rate = RATE_TABLE[24]
        llrs = rng.normal(size=rate.n_cbps * 4)
        decoded = decode_data_field(llrs, rate, 20)
        assert isinstance(decoded.psdu, bytes)
