"""Integration tests: the EVM predictor inside the closed loop."""

import numpy as np
import pytest

from repro.channel import IndoorChannel
from repro.cos import CosLink, EvmPredictor


class TestPredictorInLink:
    def test_predictor_accumulates_history(self):
        channel = IndoorChannel.position("A", snr_db=15.0, seed=5)
        link = CosLink(channel=channel)
        link.rx.predictor = EvmPredictor()
        assert not link.rx.predictor.has_history
        link.run(n_packets=3, payload=bytes(300))
        assert link.rx.predictor.has_history

    def test_predictor_ages_with_gap(self):
        channel = IndoorChannel.position("A", snr_db=15.0, seed=5)
        link = CosLink(channel=channel, inter_packet_gap_s=1.0)  # huge gaps
        link.rx.predictor = EvmPredictor(max_age_s=0.08)
        link.run(n_packets=2, payload=bytes(300))
        # Each gap exceeds max age, so history resets between packets.
        assert not link.rx.predictor.has_history

    def test_predictor_not_worse_on_stable_channel(self):
        def accuracy(with_predictor):
            channel = IndoorChannel.position("A", snr_db=15.0, seed=5)
            link = CosLink(channel=channel)
            if with_predictor:
                link.rx.predictor = EvmPredictor()
            return link.run(n_packets=12, payload=bytes(300)).message_accuracy

        assert accuracy(True) >= accuracy(False) - 0.1

    def test_selection_uses_smoothed_values(self):
        """A one-packet EVM spike must not flip the selected set when the
        predictor carries stable history."""
        predictor = EvmPredictor(alpha=0.2)
        stable = np.full(48, 0.05)
        stable[10] = 0.12
        for _ in range(10):
            predictor.update(stable + np.random.default_rng(1).normal(0, 0.001, 48))
        spike = stable.copy()
        spike[40] = 0.3  # transient
        smoothed = predictor.update(spike)
        assert smoothed[40] < 0.12  # spike damped below the true weak one
